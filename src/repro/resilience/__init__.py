"""repro.resilience — fault injection, checkpoint/restart, health guards.

The assumption behind the paper's 4096-node runs — every rank and
every Alltoallv message survives — does not hold in production.  This
package makes the reproduction *fail like a real machine* and *recover
like a production system*:

* :mod:`repro.resilience.faults` — a deterministic, seeded fault
  injector (message drop / payload corruption / delay / rank crash)
  that plugs into :class:`repro.dist.SimComm`, plus the errors its
  recovery policies raise when healing fails;
* :mod:`repro.resilience.checkpoint` — periodic solver-state
  snapshots through the crash-safe atomic-write + CRC path, with
  bit-exact resume;
* :mod:`repro.resilience.health` — a NaN/Inf + divergence watchdog
  that triggers checkpoint rollback with a damped step instead of
  crashing (or silently emitting garbage).

Everything reports through the ``fault.*`` / ``checkpoint.*`` /
``health.*`` obs counters; see ``docs/resilience.md``.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointIntegrityWarning,
    CheckpointManager,
    SolverCheckpoint,
)
from .faults import (
    CommDeliveryError,
    FaultConfig,
    FaultInjector,
    FaultStats,
    RankCrashError,
    parse_fault_spec,
    payload_crc,
)
from .health import HealthIncident, HealthMonitor
from .retry import RetryPolicy

__all__ = [
    "RetryPolicy",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointIntegrityWarning",
    "CheckpointManager",
    "SolverCheckpoint",
    "CommDeliveryError",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "RankCrashError",
    "parse_fault_spec",
    "payload_crc",
    "HealthIncident",
    "HealthMonitor",
]
