"""Periodic solver checkpointing with bit-exact resume.

Long CG runs at beamline scale are killed by node failures, walltime
limits, and operators; re-running 30 iterations from scratch wastes
exactly the compute the memory-centric design saved.  The
:class:`CheckpointManager` snapshots a solver's *recurrence state* —
for CGLS that is ``(x, r, p, gamma, gamma0)``, for SIRT/MLEM just
``x`` — every N iterations, through the same crash-safe atomic-write +
CRC-32 path the operator format and plan cache use
(:mod:`repro.persist`), so a killed run resumes to a **bit-identical**
final iterate.

The manager also keeps the latest snapshot *in memory* (even with no
disk path), which is what the numerical-health monitor rolls back to
when an iteration produces NaN/Inf or sustained divergence.

Checkpoint files are single ``.npz`` archives, overwritten atomically
on each save — a crash mid-save leaves the previous checkpoint intact.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from ..obs import (
    CHECKPOINT_BYTES_WRITTEN,
    CHECKPOINT_RESTORES,
    CHECKPOINT_SAVES,
    add_count,
    span,
)
from ..persist import atomic_savez, payload_checksum

__all__ = [
    "SolverCheckpoint",
    "CheckpointManager",
    "CheckpointError",
    "CheckpointIntegrityWarning",
    "CHECKPOINT_FORMAT_VERSION",
]

CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is missing, unreadable, or fails its checksum."""


class CheckpointIntegrityWarning(UserWarning):
    """A checkpoint was unusable and has been ignored."""


@dataclass
class SolverCheckpoint:
    """One solver-state snapshot.

    ``arrays`` holds the recurrence vectors (float64, saved losslessly);
    ``scalars`` the recurrence scalars; the two history lists restore
    the convergence record so a resumed :class:`~repro.solvers.base.
    SolveResult` is indistinguishable from an uninterrupted one.
    """

    solver: str
    iteration: int
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)
    residual_norms: list[float] = field(default_factory=list)
    solution_norms: list[float] = field(default_factory=list)

    def nbytes(self) -> int:
        return int(sum(np.asarray(a).nbytes for a in self.arrays.values()))


class CheckpointManager:
    """Snapshot/restore policy for iterative solvers.

    Parameters
    ----------
    path:
        Checkpoint file (``.npz``).  ``None`` keeps snapshots in memory
        only — enough for health rollback, no resume across processes.
    every:
        Snapshot period in iterations; ``0`` disables periodic saves
        (explicit :meth:`save` calls still work).
    """

    def __init__(self, path: str | Path | None = None, every: int = 10):
        if every < 0:
            raise ValueError(f"checkpoint period must be >= 0, got {every}")
        self.path = Path(path) if path is not None else None
        if self.path is not None and not self.path.name.endswith(".npz"):
            self.path = self.path.with_name(self.path.name + ".npz")
        self.every = int(every)
        self.last: SolverCheckpoint | None = None

    # -- policy ---------------------------------------------------------

    def should_save(self, iteration: int) -> bool:
        return self.every > 0 and iteration > 0 and iteration % self.every == 0

    def maybe_save(self, checkpoint: SolverCheckpoint) -> bool:
        """Save when the periodic policy says so; returns whether it did."""
        if not self.should_save(checkpoint.iteration):
            return False
        self.save(checkpoint)
        return True

    # -- save / load -----------------------------------------------------

    def save(self, checkpoint: SolverCheckpoint) -> None:
        """Snapshot to memory and (when a path is set) to disk, atomically."""
        # Copy the arrays: the solver mutates x/r/p in place and the
        # rollback target must be the values at snapshot time.
        checkpoint = SolverCheckpoint(
            solver=checkpoint.solver,
            iteration=checkpoint.iteration,
            arrays={k: np.array(v, copy=True) for k, v in checkpoint.arrays.items()},
            scalars=dict(checkpoint.scalars),
            residual_norms=list(checkpoint.residual_norms),
            solution_norms=list(checkpoint.solution_norms),
        )
        self.last = checkpoint
        add_count(CHECKPOINT_SAVES, 1)
        if self.path is None:
            return
        with span(
            "checkpoint.save", solver=checkpoint.solver, iteration=checkpoint.iteration
        ):
            payload: dict = {
                "format_version": CHECKPOINT_FORMAT_VERSION,
                "solver": checkpoint.solver,
                "iteration": checkpoint.iteration,
                "residual_norms": np.asarray(checkpoint.residual_norms, dtype=np.float64),
                "solution_norms": np.asarray(checkpoint.solution_norms, dtype=np.float64),
                "scalar_names": np.asarray(sorted(checkpoint.scalars)),
                "scalar_values": np.asarray(
                    [checkpoint.scalars[k] for k in sorted(checkpoint.scalars)],
                    dtype=np.float64,
                ),
            }
            for name, arr in checkpoint.arrays.items():
                payload[f"array_{name}"] = np.asarray(arr)
            payload["checksum"] = np.uint32(payload_checksum(payload))
            self.path.parent.mkdir(parents=True, exist_ok=True)
            atomic_savez(self.path, payload, compress=False)
            add_count(CHECKPOINT_BYTES_WRITTEN, self.path.stat().st_size)

    def load(self) -> SolverCheckpoint | None:
        """Latest usable checkpoint: disk when a path is set, else memory.

        A corrupt or version-stale file is ignored with a
        :class:`CheckpointIntegrityWarning` (returns ``None``) — the
        caller decides whether a cold start is acceptable.
        """
        if self.path is None:
            return self.last
        if not self.path.exists():
            return None
        with span("checkpoint.restore", path=str(self.path)):
            try:
                checkpoint = _read_checkpoint(self.path)
            except CheckpointError as exc:
                warnings.warn(
                    f"checkpoint {self.path} is unusable ({exc}); ignoring it",
                    CheckpointIntegrityWarning,
                    stacklevel=2,
                )
                return None
        self.last = checkpoint
        add_count(CHECKPOINT_RESTORES, 1)
        return checkpoint

    def require(self) -> SolverCheckpoint:
        """Like :meth:`load` but failure is an error (explicit --resume)."""
        if self.path is not None and not self.path.exists():
            raise CheckpointError(f"no checkpoint at {self.path}")
        checkpoint = self.load()
        if checkpoint is None:
            raise CheckpointError(
                f"checkpoint {self.path or '<memory>'} is missing or corrupt"
            )
        return checkpoint


def _read_checkpoint(path: Path) -> SolverCheckpoint:
    try:
        with np.load(path, allow_pickle=False) as data:
            payload = {name: data[name] for name in data.files}
    except (OSError, ValueError, KeyError, BadZipFile) as exc:
        raise CheckpointError(f"unreadable archive: {exc}") from exc
    version = int(payload.get("format_version", -1))
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(f"unsupported checkpoint format version {version}")
    stored = int(payload.get("checksum", -1))
    if payload_checksum(payload) != stored:
        raise CheckpointError("checksum mismatch (corrupt or truncated file)")
    names = [str(n) for n in payload["scalar_names"]]
    values = np.asarray(payload["scalar_values"], dtype=np.float64)
    return SolverCheckpoint(
        solver=str(payload["solver"]),
        iteration=int(payload["iteration"]),
        arrays={
            name[len("array_"):]: payload[name]
            for name in payload
            if name.startswith("array_")
        },
        scalars={n: float(v) for n, v in zip(names, values)},
        residual_norms=[float(v) for v in payload["residual_norms"]],
        solution_norms=[float(v) for v in payload["solution_norms"]],
    )
