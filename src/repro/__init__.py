"""repro — a full Python reproduction of MemXCT (SC '19).

MemXCT: Memory-Centric X-ray CT Reconstruction with Massive
Parallelization, Hidayetoglu et al., SC '19
(https://doi.org/10.1145/3295500.3356220).

Public API highlights:

* :func:`repro.core.reconstruct` — sinogram in, tomogram out;
* :func:`repro.core.preprocess` — the memoizing four-step pipeline;
* :class:`repro.core.MemXCTOperator` / :class:`repro.core.CompXCTOperator`
  — memory-centric vs compute-centric projection operators;
* :mod:`repro.ordering` — two-level pseudo-Hilbert ordering;
* :mod:`repro.sparse` — CSR/ELL kernels, scan transposition,
  multi-stage input buffering;
* :mod:`repro.dist` — simulated-MPI distributed operator (A = R C A_p);
* :mod:`repro.machine` / :mod:`repro.cachesim` — device models and the
  cache simulator behind the performance studies.
"""

from . import autotune, cache, cachesim, cli, core, dataio, dist, geometry, io, machine, measurement, obs, ordering, persist, phantoms, pipeline, precision, resilience, scenarios, service, solvers, sparse, trace, utils
from .core import (
    CompXCTOperator,
    DatasetSpec,
    MemXCTOperator,
    OperatorConfig,
    ReconstructionResult,
    get_dataset,
    preprocess,
    reconstruct,
)

__version__ = "1.0.0"

__all__ = [
    "autotune",
    "cache",
    "cachesim",
    "cli",
    "core",
    "dataio",
    "dist",
    "geometry",
    "io",
    "machine",
    "measurement",
    "ordering",
    "phantoms",
    "pipeline",
    "precision",
    "scenarios",
    "service",
    "solvers",
    "sparse",
    "trace",
    "utils",
    "CompXCTOperator",
    "DatasetSpec",
    "MemXCTOperator",
    "OperatorConfig",
    "ReconstructionResult",
    "get_dataset",
    "preprocess",
    "reconstruct",
    "__version__",
]
