"""Cross-module integration tests: full pipelines end to end."""

import numpy as np
import pytest

from repro.core import OperatorConfig, get_dataset, preprocess, reconstruct, reconstruct_volume
from repro.dist import distributed_preprocess
from repro.solvers import cgls, fbp, icd, lcurve_corner, overfit_onset
from repro.utils import psnr


@pytest.fixture(scope="module")
def shale_problem():
    spec = get_dataset("RDS1").scaled(0.04)  # 60 x 82
    g = spec.geometry()
    op, report = preprocess(g)
    sino, truth = spec.sinogram(op, incident_photons=1e5, seed=0)
    return spec, g, op, report, sino, truth


class TestPipelineMatrix:
    """Every (ordering, solver) combination reconstructs acceptably."""

    @pytest.mark.parametrize("ordering", ["row-major", "hilbert", "pseudo-hilbert"])
    @pytest.mark.parametrize("solver", ["cg", "sirt"])
    def test_ordering_solver_grid(self, shale_problem, ordering, solver):
        spec, g, _, _, sino, truth = shale_problem
        iterations = 20 if solver == "cg" else 60
        res = reconstruct(sino, g, solver=solver, iterations=iterations, ordering=ordering)
        assert psnr(res.image, truth) > 18.0

    @pytest.mark.parametrize("kernel", ["csr", "buffered", "ell"])
    def test_kernel_grid(self, shale_problem, kernel):
        spec, g, _, _, sino, truth = shale_problem
        cfg = OperatorConfig(kernel=kernel, partition_size=32, buffer_bytes=2048)
        res = reconstruct(sino, g, iterations=15, config=cfg)
        assert psnr(res.image, truth) > 18.0


class TestDistributedPipeline:
    def test_distributed_preprocess_to_reconstruction(self, shale_problem):
        """The memory-scalable path: parallel tracing -> distributed
        operator -> CG -> image, no global matrix ever built."""
        spec, g, op, _, sino, truth = shale_problem
        dist_op = distributed_preprocess(g, 4)
        y = dist_op.sino_dec.ordering.to_ordered(sino)
        res = cgls(dist_op, y, num_iterations=20)
        image = dist_op.tomo_dec.ordering.from_ordered(res.x)
        assert psnr(image, truth) > 18.0

    def test_matches_serial_pipeline(self, shale_problem):
        spec, g, op, _, sino, truth = shale_problem
        serial = reconstruct(sino, g, iterations=10, operator=op)
        dist = reconstruct(sino, g, iterations=10, operator=op, num_ranks=6)
        assert abs(psnr(serial.image, truth) - psnr(dist.image, truth)) < 0.5


class TestHybridSolvers:
    def test_fbp_warm_start_accelerates_icd(self, shale_problem):
        """FBP initialization + ICD refinement (the classic MBIR recipe
        enabled by the memoized column access)."""
        spec, g, op, _, sino, truth = shale_problem
        y = op.sinogram_to_ordered(sino)
        x_fbp = op.image_to_ordered(fbp(op, sino, window="hann"))
        cold = icd(op.matrix, op.transpose, y, num_sweeps=2)
        warm = icd(op.matrix, op.transpose, y, num_sweeps=2, x0=x_fbp)
        assert warm.residual_norms[-1] < cold.residual_norms[-1]
        # Two sweeps on an undersampled scan won't reach CG quality,
        # but the image must already be recognisable.
        assert psnr(op.ordered_to_image(warm.x), truth) > 13.0

    def test_early_stopping_heuristics_agree(self, shale_problem):
        spec, g, op, _, sino, truth = shale_problem
        y = op.sinogram_to_ordered(sino)
        res = cgls(op, y, num_iterations=80)
        r, s = res.lcurve()
        stop = overfit_onset(r, s, residual_tol=0.01, growth_tol=1e-4)
        corner = lcurve_corner(r, s)
        # Both heuristics propose stopping well before the budget.
        assert stop < 80
        assert 0 <= corner < 80


class TestVolumePipeline:
    def test_volume_with_saved_operator(self, shale_problem, tmp_path):
        """Preprocess -> save -> load in a 'second process' -> batch
        reconstruction — the beamline workflow."""
        from repro.io import load_operator, save_operator

        spec, g, op, report, _, _ = shale_problem
        path = tmp_path / "op.npz"
        save_operator(path, op)
        loaded = load_operator(path)

        slices = np.stack(
            [spec.sinogram(loaded, incident_photons=1e6, seed=s)[0] for s in range(2)]
        )
        result = reconstruct_volume(slices, loaded, preprocess_report=report, iterations=10)
        assert result.volume.shape[0] == 2
        truth0 = spec.phantom(seed=0)
        assert psnr(result.volume[0], truth0) > 18.0
