"""Tests for scan-based (order-preserving) sparse transposition."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CSRMatrix, randomized_transpose, scan_transpose


def _random_sparse(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    return sp.random(rows, cols, density=density, random_state=rng, format="csr", dtype=np.float32)


class TestScanTranspose:
    @pytest.mark.parametrize("seed", range(3))
    def test_numerically_equals_scipy_transpose(self, seed):
        S = _random_sparse(40, 25, 0.15, seed)
        T = scan_transpose(CSRMatrix.from_scipy(S))
        assert T.shape == (25, 40)
        y = np.random.default_rng(seed).random(40).astype(np.float32)
        np.testing.assert_allclose(T.spmv(y), S.T @ y, atol=1e-4)

    def test_preserves_intra_row_order(self):
        """Paper Section 3.5.1: within each output row, nonzeros appear
        in increasing former-row order."""
        S = _random_sparse(50, 30, 0.2, 7)
        T = scan_transpose(CSRMatrix.from_scipy(S))
        for r in range(T.num_rows):
            seg = T.ind[T.displ[r] : T.displ[r + 1]]
            assert np.all(np.diff(seg) >= 0)

    def test_double_transpose_is_identity(self):
        S = _random_sparse(20, 20, 0.25, 8)
        A = CSRMatrix.from_scipy(S)
        TT = scan_transpose(scan_transpose(A))
        np.testing.assert_allclose(TT.to_scipy().toarray(), A.to_scipy().toarray(), atol=1e-7)
        # and because scan transposition is canonical, layout matches too
        np.testing.assert_array_equal(TT.displ, A.sort_rows_by_index().displ)

    def test_empty_matrix(self):
        A = CSRMatrix.from_scipy(sp.csr_matrix((5, 3), dtype=np.float32))
        T = scan_transpose(A)
        assert T.shape == (3, 5)
        assert T.nnz == 0

    def test_empty_columns_become_empty_rows(self):
        dense = np.zeros((4, 5), dtype=np.float32)
        dense[:, 1] = 1.0
        T = scan_transpose(CSRMatrix.from_scipy(sp.csr_matrix(dense)))
        np.testing.assert_array_equal(T.row_nnz(), [0, 4, 0, 0, 0])

    @given(seed=st.integers(0, 500), rows=st.integers(1, 30), cols=st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_transpose_property(self, seed, rows, cols):
        S = _random_sparse(rows, cols, 0.2, seed)
        T = scan_transpose(CSRMatrix.from_scipy(S))
        np.testing.assert_allclose(T.to_scipy().toarray(), S.T.toarray(), atol=1e-6)


class TestRandomizedTranspose:
    def test_same_matrix_different_order(self):
        S = _random_sparse(60, 40, 0.25, 9)
        A = CSRMatrix.from_scipy(S)
        scan = scan_transpose(A)
        rand = randomized_transpose(A, seed=3)
        np.testing.assert_allclose(
            rand.to_scipy().toarray(), scan.to_scipy().toarray(), atol=1e-7
        )
        # ... but the intra-row order differs somewhere (locality destroyed)
        assert any(
            not np.array_equal(
                rand.ind[rand.displ[r] : rand.displ[r + 1]],
                scan.ind[scan.displ[r] : scan.displ[r + 1]],
            )
            for r in range(rand.num_rows)
        )

    def test_deterministic_per_seed(self):
        A = CSRMatrix.from_scipy(_random_sparse(20, 20, 0.3, 10))
        r1 = randomized_transpose(A, seed=5)
        r2 = randomized_transpose(A, seed=5)
        np.testing.assert_array_equal(r1.ind, r2.ind)
