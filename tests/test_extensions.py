"""Tests for the extension features: FBP, Tikhonov CGLS, volume driver."""

import numpy as np
import pytest

from repro.core import get_dataset, preprocess, reconstruct_volume
from repro.solvers import TikhonovOperator, cgls, fbp, ramp_filter, regularized_cgls
from repro.utils import psnr


@pytest.fixture(scope="module")
def problem():
    spec = get_dataset("ADS1").scaled(0.25)  # 90 x 64
    g = spec.geometry()
    op, report = preprocess(g)
    clean = op.project_image(spec.phantom())
    noisy, truth = spec.sinogram(op, incident_photons=300, seed=0)  # low dose
    return g, op, report, clean, noisy, truth, spec


class TestRampFilter:
    @pytest.mark.parametrize("window", ["ramp", "shepp-logan", "hann"])
    def test_response_properties(self, window):
        r = ramp_filter(64, window)
        assert r.shape[0] >= 128
        assert abs(r[0]) < 0.01  # near-zero DC gain (band-limited ramp)
        assert r.min() >= -1e-9  # non-negative response

    def test_hann_attenuates_high_frequencies(self):
        ramp = ramp_filter(64, "ramp")
        hann = ramp_filter(64, "hann")
        nyquist = ramp.shape[0] // 2
        assert hann[nyquist] < 0.2 * ramp[nyquist]

    def test_unknown_window_rejected(self):
        with pytest.raises(ValueError):
            ramp_filter(64, "kaiser")


class TestFBP:
    def test_reconstructs_clean_data(self, problem):
        g, op, _, clean, _, truth, _ = problem
        img = fbp(op, clean, window="hann")
        assert img.shape == truth.shape
        assert psnr(img, truth) > 15.0

    def test_iterative_beats_fbp_at_low_dose(self, problem):
        """The paper's motivating claim: early-stopped iterative
        reconstruction beats FBP (under its best window) on noisy
        low-dose measurements."""
        g, op, _, _, noisy, truth, _ = problem
        best_fbp = max(
            psnr(fbp(op, noisy, window=w), truth) for w in ("ramp", "hann")
        )
        y = op.sinogram_to_ordered(noisy)
        img_cg = op.ordered_to_image(cgls(op, y, num_iterations=8).x)
        assert psnr(img_cg, truth) > best_fbp

    def test_non_2d_rejected(self, problem):
        _, op, _, _, _, _, _ = problem
        with pytest.raises(ValueError):
            fbp(op, np.zeros(10))


class TestTikhonov:
    def test_augmented_operator_shapes(self, problem):
        _, op, _, _, _, _, _ = problem
        aug = TikhonovOperator(op, 0.5)
        assert aug.num_rays == op.num_rays + op.num_pixels
        assert aug.num_pixels == op.num_pixels

    def test_adjoint_consistency(self, problem, rng):
        _, op, _, _, _, _, _ = problem
        aug = TikhonovOperator(op, 0.7)
        x = rng.random(aug.num_pixels)
        y = rng.random(aug.num_rays)
        lhs = float(aug.forward(x) @ y)
        rhs = float(x @ aug.adjoint(y))
        assert lhs == pytest.approx(rhs, rel=1e-4)

    def test_regularization_shrinks_solution(self, problem):
        _, op, _, _, noisy, _, _ = problem
        y = op.sinogram_to_ordered(noisy)
        free = cgls(op, y, num_iterations=40)
        ridge = regularized_cgls(op, y, strength=10.0, num_iterations=40)
        assert np.linalg.norm(ridge.x) < np.linalg.norm(free.x)

    def test_zero_strength_matches_cgls(self, problem):
        _, op, _, _, noisy, _, _ = problem
        y = op.sinogram_to_ordered(noisy)
        free = cgls(op, y, num_iterations=10)
        ridge = regularized_cgls(op, y, strength=0.0, num_iterations=10)
        np.testing.assert_allclose(ridge.x, free.x, rtol=1e-6, atol=1e-8)

    def test_regularization_helps_at_low_dose(self, problem):
        _, op, _, _, noisy, truth, _ = problem
        y = op.sinogram_to_ordered(noisy)
        free = cgls(op, y, num_iterations=60)
        ridge = regularized_cgls(op, y, strength=3.0, num_iterations=60)
        assert psnr(op.ordered_to_image(ridge.x), truth) >= psnr(
            op.ordered_to_image(free.x), truth
        )

    def test_negative_strength_rejected(self, problem):
        _, op, _, _, _, _, _ = problem
        with pytest.raises(ValueError):
            TikhonovOperator(op, -1.0)


class TestVolume:
    def test_stack_reconstruction(self, problem, rng):
        g, op, report, _, _, _, spec = problem
        slices = []
        truths = []
        for seed in range(3):
            sino, truth = spec.sinogram(op, incident_photons=1e6, seed=seed)
            slices.append(sino)
            truths.append(truth)
        result = reconstruct_volume(
            np.stack(slices), op, preprocess_report=report, iterations=15
        )
        assert result.volume.shape == (3, g.grid.n, g.grid.n)
        assert result.num_slices == 3
        for k in range(3):
            assert psnr(result.volume[k], truths[k]) > 20.0

    def test_amortization_fraction(self, problem, rng):
        g, op, report, _, noisy, _, _ = problem
        one = reconstruct_volume(noisy[None], op, preprocess_report=report, iterations=3)
        many = reconstruct_volume(
            np.repeat(noisy[None], 5, axis=0), op, preprocess_report=report, iterations=3
        )
        assert many.amortized_preprocessing_fraction() < one.amortized_preprocessing_fraction()
        assert many.seconds_per_slice > 0

    def test_validation(self, problem):
        _, op, _, _, noisy, _, _ = problem
        with pytest.raises(ValueError):
            reconstruct_volume(noisy, op)  # 2D, not 3D
        with pytest.raises(ValueError):
            reconstruct_volume(np.zeros((2, 3, 3)), op)
