"""Tests for the alpha-beta communication cost model.

Everything in :mod:`repro.dist.comm_model` speaks one unit system —
latencies in seconds, bandwidths in bytes/second, payload matrices in
bytes — and validates its inputs; the audit battery at the bottom pins
both contracts alongside the behavioural tests.
"""

import numpy as np
import pytest

from repro.dist import (
    allreduce_time,
    alltoallv_time,
    alltoallv_time_from_log,
    hier_alltoallv_time,
    memxct_comm_elements,
    overlapped_exchange_time,
    trace_comm_elements,
)
from repro.dist.simmpi import CommLog
from repro.machine import get_machine
from repro.topology import Topology


class TestAlltoallv:
    def test_zero_traffic_is_free(self):
        t = alltoallv_time(np.zeros((4, 4)), get_machine("theta"))
        assert t == 0.0

    def test_scales_with_volume(self):
        m = get_machine("theta")
        v1 = np.zeros((2, 2))
        v1[0, 1] = 1e6
        v2 = v1 * 10
        assert alltoallv_time(v2, m) > alltoallv_time(v1, m)

    def test_latency_term_counts_partners(self):
        m = get_machine("theta")
        # Same total volume; spread over more partners costs more alpha.
        few = np.zeros((8, 8))
        few[0, 1] = 8e3
        many = np.zeros((8, 8))
        many[0, 1:] = np.full(7, 8e3 / 7)
        assert alltoallv_time(many, m) > alltoallv_time(few, m)

    def test_self_traffic_excluded(self):
        m = get_machine("theta")
        v = np.zeros((2, 2))
        v[0, 0] = 1e9
        assert alltoallv_time(v, m) == 0.0

    def test_gpu_pays_host_device_transfer(self):
        v = np.zeros((2, 2))
        v[0, 1] = 1e8
        theta = alltoallv_time(v, get_machine("theta"))
        bw = alltoallv_time(v, get_machine("bluewaters"))
        bw_no_link = alltoallv_time(
            v, get_machine("bluewaters"), include_device_transfer=False
        )
        assert bw > bw_no_link
        assert theta != bw

    def test_from_log(self):
        log = CommLog(2)
        log.volume_bytes[0, 1] = 1000
        assert alltoallv_time_from_log(log, get_machine("theta")) > 0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            alltoallv_time(np.zeros((2, 3)), get_machine("theta"))


class TestAllreduce:
    def test_single_rank_free(self):
        assert allreduce_time(10**6, 1, get_machine("theta")) == 0.0

    def test_log_p_growth(self):
        m = get_machine("theta")
        t4 = allreduce_time(10**6, 4, m)
        t16 = allreduce_time(10**6, 16, m)
        assert t16 == pytest.approx(2 * t4, rel=1e-6)  # log2: 2 vs 4 rounds

    def test_gpu_more_expensive(self):
        assert allreduce_time(10**6, 8, get_machine("bluewaters")) > allreduce_time(
            10**6, 8, get_machine("theta")
        )


class TestComplexityCurves:
    def test_memxct_sqrt_p(self):
        e1 = memxct_comm_elements(100, 100, 4)
        e2 = memxct_comm_elements(100, 100, 16)
        assert e2 / e1 == pytest.approx(2.0)

    def test_trace_log_p(self):
        assert trace_comm_elements(100, 1) == 0.0
        assert trace_comm_elements(100, 16) / trace_comm_elements(100, 4) == pytest.approx(2.0)

    def test_crossover_favours_memxct_at_scale(self):
        """At large P with M ~ N, MemXCT's per-rank O(MN/sqrt(P)) beats
        the duplicated allreduce O(N^2 log P) — Table 1's punchline."""
        m = n = 2048
        p = 4096
        memxct_per_rank = memxct_comm_elements(m, n, p) / p
        trace_per_rank = trace_comm_elements(n, p)
        assert memxct_per_rank < trace_per_rank


class TestValidation:
    """Input contracts: every entry point rejects out-of-unit garbage."""

    def test_allreduce_rejects_bad_ranks(self):
        m = get_machine("theta")
        with pytest.raises(ValueError, match="num_ranks"):
            allreduce_time(100, 0, m)
        with pytest.raises(ValueError, match="num_ranks"):
            allreduce_time(100, -2, m)

    def test_allreduce_rejects_negative_elements(self):
        with pytest.raises(ValueError, match="num_elements"):
            allreduce_time(-1, 4, get_machine("theta"))
        assert allreduce_time(0, 4, get_machine("theta")) >= 0.0

    def test_alltoallv_rejects_negative_bytes(self):
        v = np.zeros((3, 3))
        v[0, 1] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            alltoallv_time(v, get_machine("theta"))

    def test_hier_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            hier_alltoallv_time(
                np.zeros((2, 3)), Topology.flat(2), get_machine("dgx1")
            )

    def test_hier_rejects_topology_mismatch(self):
        with pytest.raises(ValueError, match="topology spans"):
            hier_alltoallv_time(
                np.zeros((4, 4)), Topology.hierarchical(3, 2), get_machine("dgx1")
            )

    def test_overlap_rejects_negative_times(self):
        for bad in [(-1.0, 0.0, 0.0), (0.0, -1.0, 0.0), (0.0, 0.0, -1.0)]:
            with pytest.raises(ValueError, match="non-negative"):
                overlapped_exchange_time(*bad)


class TestHierAlltoallv:
    def _cross_volume(self, p=8, payload=8e3):
        """Every cross-rank pair ships a small payload: latency-bound."""
        v = np.full((p, p), payload)
        np.fill_diagonal(v, 0.0)
        return v

    def test_zero_traffic_is_free(self):
        t = hier_alltoallv_time(
            np.zeros((4, 4)), Topology.hierarchical(2, 2), get_machine("dgx1")
        )
        assert t == 0.0

    def test_units_scale_with_bytes(self):
        """Doubling every payload at least doubles the beta term — the
        matrix really is bytes against bytes/second."""
        m = get_machine("dgx1")
        topo = Topology.hierarchical(2, 4)
        v = self._cross_volume(8, 1e8)  # bandwidth-dominated
        t1 = hier_alltoallv_time(v, topo, m)
        t2 = hier_alltoallv_time(2 * v, topo, m)
        assert t2 > 1.5 * t1

    def test_flat_topology_never_hits_network(self):
        """One node = no inter-node link: only the intra fabric is paid,
        so the lower-latency fabric makes the exchange cheaper than the
        flat network model (and no host-device staging is charged — the
        payload never leaves the node)."""
        m = get_machine("dgx1")
        v = self._cross_volume(8, 1e6)
        assert m.intra_latency_s < m.net_latency_s
        assert hier_alltoallv_time(v, Topology.flat(8), m) < alltoallv_time(v, m)

    def test_aggregation_wins_when_latency_bound(self):
        """Many tiny cross-node messages: per-node startup beats per-rank
        startup — the regime where the two-level exchange pays."""
        m = get_machine("dgx1")
        p = m.devices_per_node * 4
        v = self._cross_volume(p, payload=64.0)
        topo = Topology.grouped(p, m.devices_per_node)
        assert hier_alltoallv_time(v, topo, m) < alltoallv_time(v, m)


class TestOverlap:
    def test_compute_fully_hides_inter(self):
        assert overlapped_exchange_time(0.25, 1.0, 2.0) == pytest.approx(0.25)

    def test_partial_exposure(self):
        assert overlapped_exchange_time(0.25, 3.0, 2.0) == pytest.approx(1.25)

    def test_no_compute_no_hiding(self):
        assert overlapped_exchange_time(0.5, 2.0, 0.0) == pytest.approx(2.5)

    def test_never_negative_and_bounded(self):
        """Overlap can only shave the inter term: the result sits between
        the intra floor and the fully sequential sum."""
        for intra, inter, compute in [(0.1, 0.9, 0.4), (0.0, 1.0, 1.0), (1.0, 0.0, 5.0)]:
            t = overlapped_exchange_time(intra, inter, compute)
            assert intra <= t <= intra + inter
