"""Tests for the alpha-beta communication cost model."""

import numpy as np
import pytest

from repro.dist import (
    allreduce_time,
    alltoallv_time,
    alltoallv_time_from_log,
    memxct_comm_elements,
    trace_comm_elements,
)
from repro.dist.simmpi import CommLog
from repro.machine import get_machine


class TestAlltoallv:
    def test_zero_traffic_is_free(self):
        t = alltoallv_time(np.zeros((4, 4)), get_machine("theta"))
        assert t == 0.0

    def test_scales_with_volume(self):
        m = get_machine("theta")
        v1 = np.zeros((2, 2))
        v1[0, 1] = 1e6
        v2 = v1 * 10
        assert alltoallv_time(v2, m) > alltoallv_time(v1, m)

    def test_latency_term_counts_partners(self):
        m = get_machine("theta")
        # Same total volume; spread over more partners costs more alpha.
        few = np.zeros((8, 8))
        few[0, 1] = 8e3
        many = np.zeros((8, 8))
        many[0, 1:] = np.full(7, 8e3 / 7)
        assert alltoallv_time(many, m) > alltoallv_time(few, m)

    def test_self_traffic_excluded(self):
        m = get_machine("theta")
        v = np.zeros((2, 2))
        v[0, 0] = 1e9
        assert alltoallv_time(v, m) == 0.0

    def test_gpu_pays_host_device_transfer(self):
        v = np.zeros((2, 2))
        v[0, 1] = 1e8
        theta = alltoallv_time(v, get_machine("theta"))
        bw = alltoallv_time(v, get_machine("bluewaters"))
        bw_no_link = alltoallv_time(
            v, get_machine("bluewaters"), include_device_transfer=False
        )
        assert bw > bw_no_link
        assert theta != bw

    def test_from_log(self):
        log = CommLog(2)
        log.volume_bytes[0, 1] = 1000
        assert alltoallv_time_from_log(log, get_machine("theta")) > 0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            alltoallv_time(np.zeros((2, 3)), get_machine("theta"))


class TestAllreduce:
    def test_single_rank_free(self):
        assert allreduce_time(10**6, 1, get_machine("theta")) == 0.0

    def test_log_p_growth(self):
        m = get_machine("theta")
        t4 = allreduce_time(10**6, 4, m)
        t16 = allreduce_time(10**6, 16, m)
        assert t16 == pytest.approx(2 * t4, rel=1e-6)  # log2: 2 vs 4 rounds

    def test_gpu_more_expensive(self):
        assert allreduce_time(10**6, 8, get_machine("bluewaters")) > allreduce_time(
            10**6, 8, get_machine("theta")
        )


class TestComplexityCurves:
    def test_memxct_sqrt_p(self):
        e1 = memxct_comm_elements(100, 100, 4)
        e2 = memxct_comm_elements(100, 100, 16)
        assert e2 / e1 == pytest.approx(2.0)

    def test_trace_log_p(self):
        assert trace_comm_elements(100, 1) == 0.0
        assert trace_comm_elements(100, 16) / trace_comm_elements(100, 4) == pytest.approx(2.0)

    def test_crossover_favours_memxct_at_scale(self):
        """At large P with M ~ N, MemXCT's per-rank O(MN/sqrt(P)) beats
        the duplicated allreduce O(N^2 log P) — Table 1's punchline."""
        m = n = 2048
        p = 4096
        memxct_per_rank = memxct_comm_elements(m, n, p) / p
        trace_per_rank = trace_comm_elements(n, p)
        assert memxct_per_rank < trace_per_rank
