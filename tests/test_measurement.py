"""Tests for measurement-side utilities (normalization, COR)."""

import numpy as np
import pytest

from repro.measurement import (
    estimate_center_of_rotation,
    normalize_counts,
    simulate_counts,
)


@pytest.fixture(scope="module")
def clean_sinogram():
    from repro.core import get_dataset, preprocess

    spec = get_dataset("ADS1").scaled(0.25)
    op, _ = preprocess(spec.geometry())
    return op.project_image(spec.phantom())


class TestNormalization:
    def test_roundtrip_at_high_dose(self, clean_sinogram):
        raw = simulate_counts(clean_sinogram, incident_photons=1e7, seed=0)
        sino = normalize_counts(
            raw["counts"], raw["flat"], raw["dark"], float(raw["attenuation_scale"])
        )
        err = np.abs(sino - clean_sinogram).mean()
        assert err < 0.01 * clean_sinogram.mean()

    def test_noise_decreases_with_dose(self, clean_sinogram):
        def residual(photons):
            raw = simulate_counts(clean_sinogram, incident_photons=photons, seed=1)
            sino = normalize_counts(
                raw["counts"], raw["flat"], raw["dark"], float(raw["attenuation_scale"])
            )
            return np.std(sino - clean_sinogram)

        assert residual(1e6) < 0.3 * residual(1e3)

    def test_dark_field_removed(self, clean_sinogram):
        """A large dark offset must not bias the normalized sinogram."""
        raw = simulate_counts(clean_sinogram, incident_photons=1e7, dark_level=500.0, seed=2)
        sino = normalize_counts(
            raw["counts"], raw["flat"], raw["dark"], float(raw["attenuation_scale"])
        )
        assert np.abs(sino - clean_sinogram).mean() < 0.02 * clean_sinogram.mean()

    def test_finite_on_dead_pixels(self, clean_sinogram):
        raw = simulate_counts(clean_sinogram, incident_photons=100, seed=3)
        raw["counts"][0, 0] = 0.0  # dead pixel
        sino = normalize_counts(
            raw["counts"], raw["flat"], raw["dark"], float(raw["attenuation_scale"])
        )
        assert np.isfinite(sino).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            normalize_counts(np.ones((2, 2)), np.ones((2, 3)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            normalize_counts(np.ones((2, 2)), np.ones((2, 2)), np.ones((2, 2)),
                             attenuation_scale=0.0)
        with pytest.raises(ValueError):
            simulate_counts(np.ones((2, 2)), incident_photons=-1)


class TestCenterOfRotation:
    def test_centered_scan(self, clean_sinogram):
        n = clean_sinogram.shape[1]
        cor = estimate_center_of_rotation(clean_sinogram)
        assert cor == pytest.approx((n - 1) / 2.0, abs=0.25)

    @pytest.mark.parametrize("shift", [-4, -1, 2, 5])
    def test_shifted_scan(self, clean_sinogram, shift):
        shifted = np.roll(clean_sinogram, shift, axis=1)
        n = clean_sinogram.shape[1]
        cor = estimate_center_of_rotation(shifted)
        assert cor == pytest.approx((n - 1) / 2.0 + shift, abs=0.3)

    def test_robust_to_noise(self, clean_sinogram):
        rng = np.random.default_rng(0)
        noisy = clean_sinogram + rng.normal(scale=0.05 * clean_sinogram.max(),
                                            size=clean_sinogram.shape)
        n = clean_sinogram.shape[1]
        assert estimate_center_of_rotation(noisy) == pytest.approx((n - 1) / 2.0, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_center_of_rotation(np.zeros(5))
        with pytest.raises(ValueError):
            estimate_center_of_rotation(np.zeros((1, 5)))
