"""Tests for the fan-beam geometry extension."""

import numpy as np
import pytest

from repro.geometry import FanBeamGeometry, Grid2D, ParallelBeamGeometry
from repro.trace import build_fan_projection_matrix, build_projection_matrix, trace_rays


class TestFanBeamGeometry:
    def test_shapes(self):
        g = FanBeamGeometry(36, 24, source_distance=60.0)
        assert g.sinogram_shape == (36, 24)
        assert g.num_rays == 864

    def test_angles_cover_full_turn(self):
        g = FanBeamGeometry(4, 8, source_distance=30.0)
        np.testing.assert_allclose(g.angles(), [0, np.pi / 2, np.pi, 3 * np.pi / 2])

    def test_default_fan_covers_circle(self):
        g = FanBeamGeometry(4, 16, source_distance=40.0)
        assert g.fan_angle == pytest.approx(2 * np.arcsin(8 / 40.0))

    def test_source_positions_on_circle(self):
        g = FanBeamGeometry(8, 8, source_distance=25.0)
        for ai in range(8):
            assert np.linalg.norm(g.source_position(ai)) == pytest.approx(25.0)

    def test_central_ray_points_at_axis(self):
        g = FanBeamGeometry(8, 9, source_distance=25.0)  # odd channels -> no exact centre
        d = g.ray_directions(0)
        src = g.source_position(0)
        # The middle channel's angle is the smallest |gamma|.
        mid = np.argmin(np.abs(g.channel_angles()))
        cross = src[0] * d[mid, 1] - src[1] * d[mid, 0]
        assert abs(cross) < 25.0 * np.sin(g.fan_angle / 9)

    def test_directions_are_unit(self):
        g = FanBeamGeometry(12, 8, source_distance=30.0)
        for ai in (0, 5, 11):
            d = g.ray_directions(ai)
            np.testing.assert_allclose(np.linalg.norm(d, axis=1), 1.0)

    def test_source_must_clear_grid(self):
        with pytest.raises(ValueError):
            FanBeamGeometry(4, 16, source_distance=8.0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            FanBeamGeometry(0, 8, source_distance=30.0)
        with pytest.raises(ValueError):
            FanBeamGeometry(4, 8, source_distance=30.0, fan_angle=4.0)


class TestFanBeamMatrix:
    def test_chords_bounded(self):
        g = FanBeamGeometry(30, 20, source_distance=50.0)
        A = build_fan_projection_matrix(g)
        y = A @ np.ones(A.shape[1], dtype=np.float32)
        assert y.max() <= 20 * np.sqrt(2.0) + 1e-5
        assert (A.data > 0).all()

    def test_central_rays_cover_center(self):
        g = FanBeamGeometry(16, 16, source_distance=40.0)
        A = build_fan_projection_matrix(g)
        x = np.zeros(256, dtype=np.float32)
        x[8 * 16 + 8] = 1.0  # near-centre pixel
        y = (A @ x).reshape(16, 16)
        assert (y.sum(axis=1) > 0).all()  # every fan sees the centre

    def test_converges_to_parallel_beam(self):
        """At enormous source distance the fan's rays become parallel:
        the central ray matches the corresponding parallel-beam ray."""
        n = 16
        gp = ParallelBeamGeometry(8, n)
        Ap = build_projection_matrix(gp).toarray()
        gf = FanBeamGeometry(16, n, source_distance=1e7)
        Af = build_fan_projection_matrix(gf).toarray()
        # Fan at rotation angle pi shoots along +x through the centre
        # like the parallel projection at theta = pi/2.
        fan_row = Af[8 * n + n // 2]
        par_row = Ap[4 * n + n // 2]
        assert (fan_row > 0).sum() == (par_row > 0).sum() == n

    def test_reconstruction_through_standard_pipeline(self):
        """The fan matrix drops into the same solver machinery."""
        from repro.phantoms import shepp_logan
        from repro.solvers import cgls
        from repro.sparse import CSRMatrix, scan_transpose

        g = FanBeamGeometry(60, 32, source_distance=80.0)
        A = CSRMatrix.from_scipy(build_fan_projection_matrix(g))
        AT = scan_transpose(A)

        class Op:
            num_rays, num_pixels = A.num_rows, A.num_cols
            forward = staticmethod(lambda x: A.spmv(np.asarray(x, dtype=np.float32)))
            adjoint = staticmethod(lambda y: AT.spmv(np.asarray(y, dtype=np.float32)))

        truth = shepp_logan(32).reshape(-1)
        y = A.spmv(truth.astype(np.float32))
        res = cgls(Op(), y, num_iterations=40)
        err = np.linalg.norm(res.x - truth) / np.linalg.norm(truth)
        assert err < 0.25


class TestTraceRays:
    def test_validation(self):
        grid = Grid2D(8)
        with pytest.raises(ValueError):
            trace_rays(grid, np.zeros((3, 2)), np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            trace_rays(grid, np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(2))

    def test_matches_parallel_tracer(self):
        """Feeding parallel rays through the generic tracer reproduces
        trace_angle exactly."""
        from repro.trace import trace_angle

        g = ParallelBeamGeometry(12, 10)
        for ai in (0, 3, 7):
            ref = trace_angle(g, ai)
            origins = g.ray_origins(ai)
            d = g.ray_directions()[ai]
            directions = np.broadcast_to(d, origins.shape)
            ids = g.ray_index(np.full(10, ai), np.arange(10))
            got = trace_rays(g.grid, origins, directions, ids)
            ref_map = dict(zip(zip(ref.ray_index, ref.pixel_index), ref.length))
            got_map = dict(zip(zip(got.ray_index, got.pixel_index), got.length))
            assert ref_map.keys() == got_map.keys()
            for key in ref_map:
                assert got_map[key] == pytest.approx(ref_map[key], abs=1e-9)

    def test_ray_missing_grid(self):
        grid = Grid2D(4)
        segs = trace_rays(
            grid,
            np.array([[10.0, 10.0]]),
            np.array([[0.0, 1.0]]),
            np.array([0]),
        )
        assert len(segs) == 0
