"""Tests for dataset descriptors and Table 3 footprint calculators."""

import numpy as np
import pytest

from repro.core import CHORD_CONSTANT, DATASETS, TABLE3_PAPER, get_dataset, preprocess, table3_row
from repro.trace import build_projection_matrix, projection_matrix_stats


class TestDescriptors:
    def test_paper_dimensions(self):
        assert get_dataset("ADS1").num_projections == 360
        assert get_dataset("ADS1").num_channels == 256
        assert get_dataset("ADS4").num_channels == 2048
        assert get_dataset("RDS1").num_projections == 1501
        assert get_dataset("RDS2").num_channels == 11283

    def test_sample_types(self):
        assert get_dataset("ADS2").sample == "artificial"
        assert get_dataset("RDS1").sample == "shale"
        assert get_dataset("RDS2").sample == "brain"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_dataset("ADS9")

    def test_scaled_preserves_aspect(self):
        s = get_dataset("ADS2").scaled(0.125)
        full = get_dataset("ADS2")
        assert s.num_projections / s.num_channels == pytest.approx(
            full.num_projections / full.num_channels, rel=0.1
        )
        assert "@" in s.name

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            get_dataset("ADS1").scaled(0.0)
        with pytest.raises(ValueError):
            get_dataset("ADS1").scaled(1.5)

    def test_geometry(self):
        g = get_dataset("ADS1").scaled(0.125).geometry()
        assert g.sinogram_shape == (44, 32)  # 45 rounded to even


class TestFootprints:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_irregular_matches_paper(self, name):
        """Irregular data = domain vectors: must match Table 3 within
        a few percent (the paper rounds)."""
        spec = get_dataset(name)
        fwd, adj = spec.irregular_bytes()
        paper_fwd, paper_adj = TABLE3_PAPER[name]["irregular"]
        assert fwd == pytest.approx(paper_fwd, rel=0.10)
        assert adj == pytest.approx(paper_adj, rel=0.10)

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_regular_matches_paper(self, name):
        """Regular data = 8 B x nnz with nnz from the chord law: must
        land within ~25 % of Table 3 (the paper's own rounding plus the
        chord-constant approximation)."""
        spec = get_dataset(name)
        fwd, _ = spec.regular_bytes()
        paper_fwd, _ = TABLE3_PAPER[name]["regular"]
        assert fwd == pytest.approx(paper_fwd, rel=0.30)

    def test_chord_constant_against_traced_matrices(self):
        """The analytic nnz law must agree with real traces at two
        scales of the same dataset."""
        for factor in (0.0625, 0.125):
            spec = get_dataset("ADS1").scaled(factor)
            A = build_projection_matrix(spec.geometry())
            measured = projection_matrix_stats(A)["chord_constant"]
            assert measured == pytest.approx(CHORD_CONSTANT, rel=0.06)

    def test_table3_row_format(self):
        row = table3_row(get_dataset("ADS1"))
        assert row["sinogram"] == "360x256"
        assert row["regular_fwd"] == row["regular_adj"]


class TestSinogramSynthesis:
    def test_sinogram_and_phantom(self):
        spec = get_dataset("RDS1").scaled(0.04)
        op, _ = preprocess(spec.geometry())
        sino, truth = spec.sinogram(op, incident_photons=1e6, seed=1)
        assert sino.shape == spec.geometry().sinogram_shape
        assert truth.shape == (spec.num_channels, spec.num_channels)
        assert sino.max() > 0

    def test_noise_decreases_with_dose(self):
        spec = get_dataset("ADS1").scaled(0.125)
        op, _ = preprocess(spec.geometry())
        truth = spec.phantom()
        clean = op.project_image(truth)
        low, _ = spec.sinogram(op, incident_photons=1e3, seed=2)
        high, _ = spec.sinogram(op, incident_photons=1e7, seed=2)
        err_low = np.linalg.norm(low - clean)
        err_high = np.linalg.norm(high - clean)
        assert err_high < 0.2 * err_low

    def test_unknown_sample_rejected(self):
        from repro.core.datasets import DatasetSpec

        bad = DatasetSpec("X", 8, 8, "gas")
        with pytest.raises(ValueError):
            bad.phantom()
