"""Tests for the distributed A = R C A_p operator (paper Section 3.4)."""

import numpy as np
import pytest

from repro.dist import DistributedOperator, SimComm, decompose_both
from repro.sparse import scan_transpose


@pytest.fixture(scope="module")
def setup(ordered_medium):
    matrix, tomo, sino = ordered_medium
    return matrix, tomo, sino


def _make_op(setup, ranks, comm=None):
    matrix, tomo, sino = setup
    td, sd = decompose_both(tomo, sino, ranks)
    return DistributedOperator(matrix, td, sd, comm=comm)


class TestExactness:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4, 8, 16])
    def test_forward_matches_serial(self, setup, ranks, rng):
        matrix, _, _ = setup
        op = _make_op(setup, ranks)
        x = rng.random(matrix.num_cols).astype(np.float32)
        np.testing.assert_allclose(op.forward(x), matrix.spmv(x), rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("ranks", [1, 2, 5, 16])
    def test_adjoint_matches_serial(self, setup, ranks, rng):
        matrix, _, _ = setup
        op = _make_op(setup, ranks)
        y = rng.random(matrix.num_rows).astype(np.float32)
        ref = scan_transpose(matrix).spmv(y)
        np.testing.assert_allclose(op.adjoint(y), ref, rtol=1e-4, atol=1e-4)

    def test_adjoint_consistency(self, setup, rng):
        """<A x, y> == <x, A^T y> (inner-product test)."""
        matrix, _, _ = setup
        op = _make_op(setup, 4)
        x = rng.random(matrix.num_cols).astype(np.float32)
        y = rng.random(matrix.num_rows).astype(np.float32)
        lhs = float(np.dot(op.forward(x), y.astype(np.float64)))
        rhs = float(np.dot(x.astype(np.float64), op.adjoint(y)))
        assert lhs == pytest.approx(rhs, rel=1e-4)

    def test_pieces_api(self, setup, rng):
        matrix, _, _ = setup
        op = _make_op(setup, 4)
        x = rng.random(matrix.num_cols).astype(np.float32)
        pieces = op.tomo_dec.scatter(x)
        y_pieces = op.forward_pieces(pieces)
        assert len(y_pieces) == 4
        np.testing.assert_allclose(
            op.sino_dec.gather(y_pieces), matrix.spmv(x), rtol=1e-4, atol=1e-4
        )


class TestStructure:
    def test_per_rank_nnz_sums_to_total(self, setup):
        matrix, _, _ = setup
        op = _make_op(setup, 8)
        assert op.per_rank_nnz().sum() == matrix.nnz

    def test_comm_matrix_is_sparse(self, setup):
        """Only interacting pairs communicate (paper Fig. 7(c))."""
        op = _make_op(setup, 16)
        volume = op.communication_matrix()
        assert np.trace(volume) == 0
        assert (volume == 0).any()  # some pairs never talk

    def test_backprojection_comm_is_transpose(self, setup, rng):
        """Paper Section 3.4.2: the backprojection communication matrix
        is the transpose of the forward one."""
        matrix, _, _ = setup
        comm = SimComm(8)
        op = _make_op(setup, 8, comm=comm)
        x = rng.random(matrix.num_cols).astype(np.float32)
        op.forward(x)
        fwd_vol = comm.log.volume_bytes.copy()
        comm.reset_log()
        op.adjoint(rng.random(matrix.num_rows).astype(np.float32))
        adj_vol = comm.log.volume_bytes
        np.testing.assert_array_equal(adj_vol, fwd_vol.T)

    def test_logged_volume_matches_plan(self, setup, rng):
        matrix, _, _ = setup
        comm = SimComm(4)
        op = _make_op(setup, 4, comm=comm)
        op.forward(rng.random(matrix.num_cols).astype(np.float32))
        planned = op.communication_matrix()
        logged = comm.log.volume_bytes.copy()
        np.fill_diagonal(logged, 0)
        np.testing.assert_array_equal(logged, planned)

    def test_comm_volume_grows_sublinearly(self, setup):
        """Total footprint ~ sqrt(P): quadrupling ranks roughly doubles
        the exchanged volume (paper Section 3.4.3)."""
        v4 = _make_op(setup, 4).communication_matrix().sum()
        v16 = _make_op(setup, 16).communication_matrix().sum()
        assert 1.3 < v16 / v4 < 3.5

    def test_reduction_elements(self, setup):
        op = _make_op(setup, 4)
        assert op.reduction_elements() >= op.num_rays  # overlap duplicates rows
        solo = _make_op(setup, 1)
        assert solo.reduction_elements() == solo.num_rays

    def test_interaction_counts(self, setup):
        op = _make_op(setup, 8)
        partners = op.interaction_counts()
        assert partners.shape == (8,)
        assert (partners >= 1).all() and (partners <= 7).all()


class TestValidation:
    def test_rank_mismatch_rejected(self, setup):
        matrix, tomo, sino = setup
        td, _ = decompose_both(tomo, sino, 4)
        _, sd = decompose_both(tomo, sino, 8)
        with pytest.raises(ValueError):
            DistributedOperator(matrix, td, sd)

    def test_domain_mismatch_rejected(self, setup):
        matrix, tomo, sino = setup
        td, sd = decompose_both(tomo, tomo, 4)  # wrong sinogram domain
        with pytest.raises(ValueError):
            DistributedOperator(matrix, td, sd)
