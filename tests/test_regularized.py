"""Tests for the regularized solvers (Tikhonov / gradient / TV).

The two contract fixes under test:

* the augmented wrapper operators honor the base operator's precision
  (an fp32 operator stays fp32 end to end — zero float64 SpMV counter
  activity) instead of hard-coding float64;
* ``SolveResult.residual_norms`` reports the **data-term** residual
  ``||y - A x||``, directly comparable against unregularized solves,
  not the strength-inflated augmented-system residual.

These tests pin dtypes explicitly so they hold under ambient
``REPRO_DTYPE=float32`` / ``REPRO_WORKERS=2`` CI reruns.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.phantoms import shepp_logan
from repro.solvers import (
    GradientAugmentedOperator,
    GradientOperator,
    TikhonovOperator,
    cgls,
    regularized_cgls,
    tv_cgls,
)


@pytest.fixture(scope="module")
def geometry():
    return ParallelBeamGeometry(48, 32)


@pytest.fixture(scope="module")
def problem(geometry):
    """Explicit-fp64 operator with a noiseless phantom sinogram."""
    op, _ = preprocess(
        geometry, config=OperatorConfig(kernel="csr", dtype="float64"), cache="off"
    )
    phantom = shepp_logan(32)
    y = op.forward(op.image_to_ordered(phantom))
    return op, phantom, y


@pytest.fixture(scope="module")
def problem32(geometry):
    op, _ = preprocess(
        geometry, config=OperatorConfig(kernel="csr", dtype="float32"), cache="off"
    )
    y = op.forward(op.image_to_ordered(shepp_logan(32)).astype(np.float32))
    return op, y


class TestDtypeContract:
    """Satellite fix 1: wrappers inherit precision, never force fp64."""

    def test_tikhonov_advertises_base_dtype(self, problem32):
        op32, _ = problem32
        aug = TikhonovOperator(op32, 0.1)
        assert aug.solve_dtype == np.float32
        assert aug.compute_dtype == np.float32

    def test_gradient_advertises_base_dtype(self, problem32):
        op32, _ = problem32
        aug = GradientAugmentedOperator(op32, 0.1)
        assert aug.solve_dtype == np.float32

    def test_fp64_operator_stays_fp64(self, problem):
        op, _, y = problem
        aug = TikhonovOperator(op, 0.1)
        assert aug.solve_dtype == np.float64
        assert aug.forward(np.ones(op.num_pixels)).dtype == np.float64

    def test_fp32_solve_emits_zero_fp64_spmv(self, problem32):
        op32, y32 = problem32
        with obs.capture() as cap:
            result = regularized_cgls(op32, y32, strength=0.1, num_iterations=6)
        assert result.x.dtype == np.float32
        assert cap.total(obs.DTYPE_FP32_SPMV) > 0
        assert cap.total(obs.DTYPE_FP64_SPMV) == 0

    def test_fp32_tv_emits_zero_fp64_spmv(self, problem32):
        op32, y32 = problem32
        with obs.capture() as cap:
            result = tv_cgls(
                op32, y32, strength=0.02, num_iterations=4, outer_iterations=2
            )
        assert result.x.dtype == np.float32
        assert cap.total(obs.DTYPE_FP64_SPMV) == 0

    def test_fp32_gradient_regularizer(self, problem32):
        op32, y32 = problem32
        result = regularized_cgls(
            op32,
            y32,
            strength=0.05,
            num_iterations=6,
            regularizer="gradient",
        )
        assert result.x.dtype == np.float32


class TestDataResidual:
    """Satellite fix 2: residual_norms == ||y - A x_i||, per iterate."""

    def test_identity_prior_residuals_match_direct(self, problem):
        op, _, y = problem
        iterates = []
        result = regularized_cgls(
            op,
            y,
            strength=0.5,
            num_iterations=8,
            callback=lambda it, x: iterates.append(x.copy()),
        )
        assert len(result.residual_norms) == len(iterates) + 1
        assert result.residual_norms[0] == pytest.approx(
            float(np.linalg.norm(y)), rel=1e-12
        )
        for i, x in enumerate(iterates):
            direct = float(np.linalg.norm(y - op.forward(x)))
            assert result.residual_norms[i + 1] == pytest.approx(direct, rel=1e-6)

    def test_gradient_prior_residuals_match_direct(self, problem):
        op, _, y = problem
        iterates = []
        result = regularized_cgls(
            op,
            y,
            strength=0.3,
            num_iterations=6,
            regularizer="gradient",
            callback=lambda it, x: iterates.append(x.copy()),
        )
        for i, x in enumerate(iterates):
            direct = float(np.linalg.norm(y - op.forward(x)))
            assert result.residual_norms[i + 1] == pytest.approx(direct, rel=1e-6)

    def test_comparable_to_unregularized(self, problem):
        """With strength→0 the reported series converges to plain CGLS's."""
        op, _, y = problem
        plain = cgls(op, y, num_iterations=6)
        reg = regularized_cgls(op, y, strength=1e-12, num_iterations=6)
        np.testing.assert_allclose(
            reg.residual_norms, plain.residual_norms, rtol=1e-5
        )


class TestGradientOperator:
    def test_adjointness(self, rng):
        grad = GradientOperator((12, 9))
        u = rng.standard_normal(12 * 9)
        v = rng.standard_normal(grad.num_edges)
        lhs = float(grad.apply(u) @ v)
        rhs = float(u @ grad.adjoint(v))
        assert abs(lhs - rhs) / abs(lhs) < 1e-12

    def test_adjointness_with_permutation(self, rng):
        perm = rng.permutation(12 * 9)
        grad = GradientOperator((12, 9), perm=perm)
        u = rng.standard_normal(12 * 9)
        v = rng.standard_normal(grad.num_edges)
        lhs = float(grad.apply(u) @ v)
        rhs = float(u @ grad.adjoint(v))
        assert abs(lhs - rhs) / abs(lhs) < 1e-12

    def test_constant_image_has_zero_gradient(self):
        grad = GradientOperator((8, 8))
        assert np.allclose(grad.apply(np.full(64, 5.0)), 0.0)

    def test_augmented_adjointness(self, problem, rng):
        op, *_ = problem
        aug = GradientAugmentedOperator(op, 0.3)
        u = rng.standard_normal(aug.num_pixels)
        v = rng.standard_normal(aug.num_rays)
        lhs = float(aug.forward(u) @ v)
        rhs = float(u @ aug.adjoint(v))
        assert abs(lhs - rhs) / abs(lhs) < 1e-10

    def test_shape_mismatch_rejected(self, problem):
        op, *_ = problem
        with pytest.raises(ValueError, match="cells"):
            GradientAugmentedOperator(op, 0.1, shape=(4, 4), perm=None)


class TestRegularizationEffect:
    def test_tikhonov_shrinks_solution_norm(self, problem):
        op, _, y = problem
        plain = cgls(op, y, num_iterations=10)
        reg = regularized_cgls(op, y, strength=5.0, num_iterations=10)
        assert np.linalg.norm(reg.x) < np.linalg.norm(plain.x)

    def test_tv_beats_plain_on_noisy_data(self, problem):
        op, phantom, y = problem
        rng = np.random.default_rng(7)
        noisy = y + 0.5 * rng.standard_normal(y.shape)
        plain = cgls(op, noisy, num_iterations=20)
        tv = tv_cgls(
            op, noisy, strength=0.5, num_iterations=10, outer_iterations=3
        )
        target = op.image_to_ordered(phantom)
        assert np.linalg.norm(tv.x - target) < np.linalg.norm(plain.x - target)

    def test_invalid_arguments(self, problem):
        op, _, y = problem
        with pytest.raises(ValueError, match="strength"):
            regularized_cgls(op, y, strength=-1.0)
        with pytest.raises(ValueError, match="regularizer"):
            regularized_cgls(op, y, strength=0.1, regularizer="fourier")
        with pytest.raises(ValueError, match="outer_iterations"):
            tv_cgls(op, y, strength=0.1, outer_iterations=0)
        with pytest.raises(ValueError, match="epsilon"):
            tv_cgls(op, y, strength=0.1, epsilon=0.0)
