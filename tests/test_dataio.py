"""Out-of-core stack I/O: sources, sinks, and the overlapped conveyor.

The contract under test is the paper's memory-centric one extended to
disk: a stack streamed chunk-by-chunk through any source/sink pair must
produce the *bit-identical* volume the legacy all-in-memory path does,
while the conveyor's bounded queues keep the working set bounded no
matter how tall the stack is.
"""

from __future__ import annotations

import time

import numpy as np
import numpy.testing as npt
import pytest

from repro import obs
from repro.core import preprocess
from repro.dataio import (
    ArraySource,
    ChunkSink,
    ChunkSource,
    Conveyor,
    ConveyorProgress,
    Hdf5Source,
    MissingDependencyError,
    NpzShardSink,
    NpzShardSource,
    RawVolumeSink,
    TiffStackSink,
    VolumeSink,
    load_volume,
    make_sink,
    open_source,
    save_stack,
)
from repro.geometry import ParallelBeamGeometry
from repro.pipeline import reconstruct_stack
from repro.resilience import RetryPolicy

import repro.dataio.reader as reader_module
import repro.dataio.writer as writer_module

HAVE_H5PY = reader_module.h5py is not None
needs_h5py = pytest.mark.skipif(not HAVE_H5PY, reason="h5py not installed")
HAVE_TIFFFILE = writer_module.tifffile is not None
needs_tifffile = pytest.mark.skipif(
    not HAVE_TIFFFILE, reason="tifffile not installed"
)


class _FakeTifffile:
    """Stand-in for the optional dependency: npy bytes behind the API.

    Lets the sink's staged-write/atomic-rename machinery run in
    environments without tifffile; the real-format roundtrip is the
    separate ``needs_tifffile`` test.
    """

    @staticmethod
    def imwrite(path, data, **_kwargs):
        with open(path, "wb") as fh:
            np.save(fh, np.asarray(data))

    @staticmethod
    def imread(path):
        return np.load(path)


@pytest.fixture(scope="module")
def stack():
    rng = np.random.default_rng(7)
    return rng.uniform(0.1, 1.0, size=(6, 24, 16))


@pytest.fixture(scope="module")
def calibration():
    rng = np.random.default_rng(8)
    darks = rng.uniform(4.0, 6.0, size=(3, 6, 16))
    flats = rng.uniform(900.0, 1100.0, size=(3, 6, 16))
    return darks, flats


class TestArraySource:
    def test_reads_views(self, stack):
        src = ArraySource(stack)
        assert src.shape == (6, 24, 16)
        assert src.num_slices == 6
        npt.assert_array_equal(src.read(1, 4), stack[1:4])

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError, match="slices, angles, channels"):
            ArraySource(np.zeros((4, 4)))

    def test_rejects_bad_range(self, stack):
        src = ArraySource(stack)
        with pytest.raises(ValueError, match="outside stack"):
            src.read(4, 9)
        with pytest.raises(ValueError, match="outside stack"):
            src.read(3, 3)

    def test_fingerprint_tracks_content(self, stack):
        a = ArraySource(stack).fingerprint()
        changed = stack.copy()
        changed[2, 3, 4] += 1e-9
        assert a == ArraySource(stack.copy()).fingerprint()
        assert a != ArraySource(changed).fingerprint()

    def test_nbytes_per_slice(self, stack):
        assert ArraySource(stack).nbytes_per_slice == 8 * 24 * 16


class TestNpzShards:
    def test_save_and_reload_roundtrip(self, tmp_path, stack, calibration):
        darks, flats = calibration
        root = save_stack(tmp_path / "shards", stack, darks, flats, shard_slices=2)
        with NpzShardSource(root) as src:
            assert src.shape == stack.shape
            npt.assert_array_equal(src.read(0, 6), stack)
            # A request crossing shard boundaries stitches correctly.
            npt.assert_array_equal(src.read(1, 5), stack[1:5])
            npt.assert_array_equal(src.darks, darks)
            npt.assert_array_equal(src.flats, flats)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="shard directory"):
            NpzShardSource(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError, match="shard-"):
            NpzShardSource(tmp_path / "empty")

    def test_gap_in_tiling_rejected(self, tmp_path, stack):
        root = save_stack(tmp_path / "shards", stack, shard_slices=2)
        (root / "shard-000002-000004.npz").unlink()
        with pytest.raises(ValueError, match="contiguous tiling"):
            NpzShardSource(root)

    def test_fingerprint_tracks_shards(self, tmp_path, stack):
        a = NpzShardSource(save_stack(tmp_path / "a", stack, shard_slices=2))
        b = NpzShardSource(save_stack(tmp_path / "b", stack, shard_slices=3))
        c = NpzShardSource(save_stack(tmp_path / "c", stack, shard_slices=2))
        # Different shard tiling is a different on-disk identity...
        assert a.fingerprint() != b.fingerprint()
        # ...but the same layout with the same content matches.
        assert a.fingerprint() == c.fingerprint()


class TestHdf5:
    @needs_h5py
    def test_tomobank_roundtrip(self, tmp_path, stack, calibration):
        darks, flats = calibration
        path = save_stack(tmp_path / "scan.h5", stack, darks, flats)
        with Hdf5Source(path) as src:
            assert src.layout == "tomobank"
            assert src.shape == stack.shape
            npt.assert_array_equal(src.read(0, 6), stack)
            npt.assert_array_equal(src.read(2, 5), stack[2:5])
            npt.assert_array_equal(src.darks, darks)
            npt.assert_array_equal(src.flats, flats)

    def test_clear_error_without_h5py(self, tmp_path, stack, monkeypatch):
        monkeypatch.setattr(reader_module, "h5py", None)
        with pytest.raises(MissingDependencyError, match="h5py"):
            Hdf5Source(tmp_path / "scan.h5")
        with pytest.raises(MissingDependencyError, match="h5py"):
            save_stack(tmp_path / "scan.h5", stack)

    def test_pipeline_degrades_without_h5py(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reader_module, "h5py", None)
        path = tmp_path / "scan.h5"
        path.write_bytes(b"")
        with pytest.raises(MissingDependencyError, match="h5py"):
            reconstruct_stack(str(path))


class TestOpenSource:
    def test_resolves_array(self, stack):
        assert isinstance(open_source(stack), ArraySource)

    def test_passthrough(self, stack):
        src = ArraySource(stack)
        assert open_source(src) is src

    def test_resolves_npz(self, tmp_path, stack, calibration):
        darks, flats = calibration
        path = save_stack(tmp_path / "stack.npz", stack, darks, flats)
        src = open_source(str(path))
        npt.assert_array_equal(src.read(0, 6), stack)
        npt.assert_array_equal(src.darks, darks)

    def test_resolves_directory(self, tmp_path, stack):
        root = save_stack(tmp_path / "shards", stack)
        assert isinstance(open_source(root), NpzShardSource)

    def test_explicit_calibration_overrides(self, tmp_path, stack, calibration):
        darks, flats = calibration
        path = save_stack(tmp_path / "stack.npz", stack, darks, flats)
        src = open_source(path, darks=darks + 1.0)
        npt.assert_array_equal(src.darks, darks + 1.0)
        npt.assert_array_equal(src.flats, flats)

    def test_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="cannot infer"):
            open_source(tmp_path / "stack.tiff")


class TestSinks:
    def _slabs(self, n=4):
        rng = np.random.default_rng(5)
        return rng.normal(size=(6, n, n))

    def test_volume_sink_accumulates(self):
        volume = self._slabs()
        sink = VolumeSink(6, 4)
        sink.write(0, 3, volume[0:3])
        sink.write(3, 6, volume[3:6])
        assert sink.finalize() is None
        npt.assert_array_equal(sink.volume, volume)

    def test_npz_shard_sink_roundtrip(self, tmp_path):
        volume = self._slabs()
        sink = NpzShardSink(tmp_path / "out", 6, 4)
        sink.write(3, 6, volume[3:6])  # out of order is fine
        sink.write(0, 3, volume[0:3])
        root = sink.finalize()
        npt.assert_array_equal(load_volume(root), volume)

    def test_npz_shard_sink_refuses_partial_finalize(self, tmp_path):
        sink = NpzShardSink(tmp_path / "out", 6, 4)
        sink.write(0, 3, self._slabs()[0:3])
        with pytest.raises(ValueError, match="no slab"):
            sink.finalize()
        with pytest.raises(FileNotFoundError, match="never finalized"):
            load_volume(tmp_path / "out")

    def test_npz_shard_sink_fresh_run_clears_stale(self, tmp_path):
        volume = self._slabs()
        first = NpzShardSink(tmp_path / "out", 6, 4)
        first.write(0, 3, volume[0:3] + 9.0)
        NpzShardSink(tmp_path / "out", 6, 4, resume=False)
        assert not list((tmp_path / "out").glob("slab-*.npz"))

    def test_npz_shard_sink_resume_keeps_slabs(self, tmp_path):
        volume = self._slabs()
        first = NpzShardSink(tmp_path / "out", 6, 4)
        first.write(0, 3, volume[0:3])
        second = NpzShardSink(tmp_path / "out", 6, 4, resume=True)
        second.write(3, 6, volume[3:6])
        npt.assert_array_equal(load_volume(second.finalize()), volume)

    def test_raw_sink_roundtrip(self, tmp_path):
        volume = self._slabs()
        sink = RawVolumeSink(tmp_path / "vol.raw", 6, 4)
        sink.write(3, 6, volume[3:6])
        sink.write(0, 3, volume[0:3])
        path = sink.finalize()
        assert path == tmp_path / "vol.raw"
        npt.assert_array_equal(load_volume(path), volume)

    def test_raw_sink_resume_reopens_partial(self, tmp_path):
        volume = self._slabs()
        first = RawVolumeSink(tmp_path / "vol.raw", 6, 4)
        first.write(0, 3, volume[0:3])
        first.close()
        second = RawVolumeSink(tmp_path / "vol.raw", 6, 4, resume=True)
        second.write(3, 6, volume[3:6])
        npt.assert_array_equal(load_volume(second.finalize()), volume)

    def test_sink_validates_slabs(self, tmp_path):
        sink = NpzShardSink(tmp_path / "out", 6, 4)
        with pytest.raises(ValueError, match="outside volume"):
            sink.write(4, 8, np.zeros((4, 4, 4)))
        with pytest.raises(ValueError, match="must be"):
            sink.write(0, 2, np.zeros((2, 5, 5)))

    def test_make_sink_mapping(self, tmp_path):
        assert isinstance(make_sink(tmp_path / "v.raw", 6, 4), RawVolumeSink)
        assert isinstance(make_sink(tmp_path / "dir", 6, 4), NpzShardSink)
        with pytest.raises(ValueError, match="npz"):
            make_sink(tmp_path / "v.npz", 6, 4)

    def test_tiff_sink_clear_error_without_tifffile(self, tmp_path, monkeypatch):
        monkeypatch.setattr(writer_module, "tifffile", None)
        with pytest.raises(MissingDependencyError, match="tifffile"):
            TiffStackSink(tmp_path / "vol.tif", 6, 4)
        with pytest.raises(MissingDependencyError, match="tifffile"):
            make_sink(tmp_path / "vol.tif", 6, 4)
        with pytest.raises(MissingDependencyError, match="tifffile"):
            load_volume(tmp_path / "vol.tif")

    def test_tiff_sink_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(writer_module, "tifffile", _FakeTifffile)
        volume = self._slabs()
        sink = make_sink(tmp_path / "vol.tif", 6, 4)
        assert isinstance(sink, TiffStackSink)
        sink.write(3, 6, volume[3:6])  # out of order is fine
        sink.write(0, 3, volume[0:3])
        path = sink.finalize()
        assert path == tmp_path / "vol.tif"
        assert not (tmp_path / "vol.tif.partial").exists()  # stage cleaned
        npt.assert_array_equal(load_volume(path), volume)

    def test_tiff_sink_resume_reopens_partial(self, tmp_path, monkeypatch):
        monkeypatch.setattr(writer_module, "tifffile", _FakeTifffile)
        volume = self._slabs()
        first = TiffStackSink(tmp_path / "vol.tif", 6, 4)
        first.write(0, 3, volume[0:3])
        first.close()
        second = TiffStackSink(tmp_path / "vol.tif", 6, 4, resume=True)
        second.write(3, 6, volume[3:6])
        npt.assert_array_equal(load_volume(second.finalize()), volume)

    @needs_tifffile
    def test_tiff_sink_real_format_roundtrip(self, tmp_path):
        volume = self._slabs()
        sink = TiffStackSink(tmp_path / "vol.tif", 6, 4)
        sink.write(0, 3, volume[0:3])
        sink.write(3, 6, volume[3:6])
        path = sink.finalize()
        npt.assert_array_equal(load_volume(path), volume)
        # The published file really is a TIFF, not our staging format.
        assert path.read_bytes()[:2] in (b"II", b"MM")


class _CountingSource(ArraySource):
    """ArraySource that records how many chunks were read."""

    def __init__(self, stack, delay=0.0):
        super().__init__(stack)
        self.reads = 0
        self.delay = delay

    def read(self, start, stop):
        self.reads += 1
        if self.delay:
            time.sleep(self.delay)
        return super().read(start, stop)


class _FailingSource(ArraySource):
    def __init__(self, stack, fail_at):
        super().__init__(stack)
        self.fail_at = fail_at

    def read(self, start, stop):
        if start >= self.fail_at:
            raise OSError("disk on fire")
        return super().read(start, stop)


class _FailingSink(VolumeSink):
    def write(self, start, stop, slab):
        raise OSError("disk is full")


class TestConveyor:
    RANGES = [(0, 2), (2, 4), (4, 6)]

    @pytest.mark.parametrize("prefetch", [0, 1, 2])
    def test_chunks_match_source(self, stack, prefetch):
        with Conveyor(ArraySource(stack), self.RANGES, prefetch=prefetch) as cv:
            seen = list(cv.chunks())
        assert [(a, b) for a, b, _ in seen] == self.RANGES
        for a, b, chunk in seen:
            npt.assert_array_equal(chunk, stack[a:b])

    @pytest.mark.parametrize("prefetch", [0, 2])
    def test_written_slabs_reach_sink(self, stack, prefetch):
        sink = VolumeSink(6, 4)
        rng = np.random.default_rng(0)
        volume = rng.normal(size=(6, 4, 4))
        confirmed = []
        with Conveyor(ArraySource(stack), self.RANGES, sink=sink, prefetch=prefetch) as cv:
            for a, b, _ in cv.chunks():
                cv.put(a, b, volume[a:b])
                confirmed.extend(cv.take_written())
            cv.finish()
            confirmed.extend(cv.take_written())
        npt.assert_array_equal(sink.volume, volume)
        assert sorted(confirmed) == self.RANGES

    def test_backpressure_bounds_readahead(self, stack):
        # A slow consumer must never see the reader run ahead of the
        # bounded queue: at most `prefetch` parked chunks plus the one
        # in the reader's hands plus the one just yielded.
        prefetch = 1
        src = _CountingSource(stack)
        ranges = [(k, k + 1) for k in range(6)]
        max_ahead = 0
        with Conveyor(src, ranges, prefetch=prefetch) as cv:
            for consumed, _ in enumerate(cv.chunks(), start=1):
                time.sleep(0.05)  # let the reader run as far as it can
                max_ahead = max(max_ahead, src.reads - consumed)
        assert max_ahead <= prefetch + 1

    def test_reader_error_surfaces_on_caller(self, stack):
        src = _FailingSource(stack, fail_at=4)
        with pytest.raises(OSError, match="disk on fire"):
            with Conveyor(src, self.RANGES, prefetch=2) as cv:
                for _ in cv.chunks():
                    pass

    def test_sync_reader_error_surfaces(self, stack):
        src = _FailingSource(stack, fail_at=4)
        with pytest.raises(OSError, match="disk on fire"):
            with Conveyor(src, self.RANGES, prefetch=0) as cv:
                for _ in cv.chunks():
                    pass

    def test_writer_error_surfaces_on_caller(self, stack):
        sink = _FailingSink(6, 4)
        slab = np.zeros((2, 4, 4))
        with pytest.raises(OSError, match="disk is full"):
            with Conveyor(ArraySource(stack), self.RANGES, sink=sink, prefetch=1) as cv:
                for a, b, _ in cv.chunks():
                    cv.put(a, b, slab)
                cv.finish()

    def test_take_written_confirms_only_durable(self, stack):
        # Synchronous path: every put is durable immediately.
        sink = VolumeSink(6, 4)
        cv = Conveyor(ArraySource(stack), self.RANGES, sink=sink, prefetch=0)
        assert cv.take_written() == []
        cv.put(0, 2, np.zeros((2, 4, 4)))
        assert cv.take_written() == [(0, 2)]
        assert cv.take_written() == []
        cv.finish()


class TestStreamedPipeline:
    """End-to-end: every source/sink combination is bit-exact."""

    @pytest.fixture(scope="class")
    def geo(self):
        return ParallelBeamGeometry(24, 16)

    @pytest.fixture(scope="class")
    def op(self, geo):
        operator, _ = preprocess(geo)
        return operator

    @pytest.fixture(scope="class")
    def sinos(self, geo, op):
        rng = np.random.default_rng(11)
        images = rng.uniform(0.0, 1.0, size=(6, 16, 16))
        return np.stack([op.project_image(img) for img in images])

    @pytest.fixture(scope="class")
    def reference(self, sinos, geo, op):
        result = reconstruct_stack(
            sinos, geo, stages=[], iterations=4, chunk_slices=2, operator=op
        )
        return result.volume

    def _run(self, raw, geo, op, **kwargs):
        return reconstruct_stack(
            raw, geo, stages=[], iterations=4, chunk_slices=2, operator=op, **kwargs
        )

    @pytest.mark.parametrize("prefetch", [0, 2])
    def test_array_source_streams_bit_exact(self, sinos, geo, op, reference, prefetch):
        result = self._run(ArraySource(sinos), geo, op, prefetch=prefetch)
        npt.assert_array_equal(result.volume, reference)

    @pytest.mark.parametrize("prefetch", [0, 2])
    def test_shard_source_streams_bit_exact(
        self, tmp_path, sinos, geo, op, reference, prefetch
    ):
        root = save_stack(tmp_path / "shards", sinos, shard_slices=3)
        result = self._run(str(root), geo, op, prefetch=prefetch)
        npt.assert_array_equal(result.volume, reference)

    @needs_h5py
    def test_hdf5_source_streams_bit_exact(self, tmp_path, sinos, geo, op, reference):
        path = save_stack(tmp_path / "scan.h5", sinos)
        result = self._run(str(path), geo, op, prefetch=2)
        npt.assert_array_equal(result.volume, reference)

    @pytest.mark.parametrize("dest", ["shards", "vol.raw"])
    def test_sink_output_matches_in_memory(
        self, tmp_path, sinos, geo, op, reference, dest
    ):
        result = self._run(
            sinos, geo, op, sink=str(tmp_path / dest), prefetch=2
        )
        assert result.volume is None
        assert result.num_slices == 6
        npt.assert_array_equal(load_volume(result.extra["output_path"]), reference)

    def test_kill_and_resume_through_conveyor(
        self, tmp_path, sinos, geo, op, reference
    ):
        ck = tmp_path / "ck.npz"
        out = tmp_path / "out"
        first = self._run(
            sinos, geo, op, sink=str(out), prefetch=2,
            checkpoint=ck, max_chunks=1,
        )
        assert first.extra["stopped_early"]
        assert "output_path" not in first.extra
        second = self._run(
            sinos, geo, op, sink=str(out), prefetch=2,
            checkpoint=ck, resume=True,
        )
        assert second.extra["resumed_slices"] == 2
        npt.assert_array_equal(load_volume(second.extra["output_path"]), reference)

    def test_in_memory_checkpoint_replays_into_sink(
        self, tmp_path, sinos, geo, op, reference
    ):
        # Start in memory, finish streaming: the completed slices from
        # the checkpointed volume must land in the sink too.
        ck = tmp_path / "ck.npz"
        self._run(sinos, geo, op, checkpoint=ck, max_chunks=1)
        out = tmp_path / "out"
        result = self._run(
            sinos, geo, op, sink=str(out), checkpoint=ck, resume=True
        )
        npt.assert_array_equal(load_volume(result.extra["output_path"]), reference)

    def test_sink_checkpoint_refuses_in_memory_resume(
        self, tmp_path, sinos, geo, op
    ):
        from repro.resilience import CheckpointError

        ck = tmp_path / "ck.npz"
        self._run(sinos, geo, op, sink=str(tmp_path / "out"), checkpoint=ck, max_chunks=1)
        with pytest.raises(CheckpointError, match="same sink"):
            self._run(sinos, geo, op, checkpoint=ck, resume=True)

    def test_budget_run_never_materializes_stack(self, tmp_path, sinos, geo, op):
        """A stack 'larger than the budget' reconstructs out of core.

        The budget below affords only a couple of slices of working
        set — far less than the whole raw stack + volume — and the
        source proves the executor only ever asked for small ranges.
        """
        root = save_stack(tmp_path / "shards", sinos, shard_slices=1)

        spans = []

        class SpyingSource(NpzShardSource):
            def read(self, start, stop):
                spans.append(stop - start)
                return super().read(start, stop)

        per_slice = 8 * (5 * op.num_rays + 4 * op.num_pixels)
        result = reconstruct_stack(
            SpyingSource(root),
            geo,
            stages=[],
            iterations=4,
            operator=op,
            memory_budget_bytes=2 * per_slice,
            sink=str(tmp_path / "out"),
        )
        assert result.volume is None
        assert max(spans) <= 2
        assert load_volume(result.extra["output_path"]).shape == (6, 16, 16)


class TestCompressedShards:
    """Opt-in deflate for both shard directions (satellite of the
    service PR): bit-exact roundtrips, stable fingerprints, and a real
    size win on compressible data."""

    @pytest.fixture(scope="class")
    def compressible(self):
        # Piecewise-constant slices deflate well; random noise would not.
        base = np.arange(6 * 24 * 16, dtype=np.float64) // 512
        return base.reshape(6, 24, 16)

    def _tree_bytes(self, root):
        return sum(p.stat().st_size for p in root.rglob("*.npz"))

    def test_source_roundtrip_bit_exact(self, tmp_path, compressible, calibration):
        darks, flats = calibration
        root = save_stack(
            tmp_path / "z", compressible, darks, flats,
            shard_slices=2, compress=True,
        )
        with NpzShardSource(root) as src:
            npt.assert_array_equal(src.read(0, 6), compressible)
            npt.assert_array_equal(src.read(1, 5), compressible[1:5])
            npt.assert_array_equal(src.darks, darks)
            npt.assert_array_equal(src.flats, flats)

    def test_compression_shrinks_shards(self, tmp_path, compressible):
        plain = save_stack(tmp_path / "plain", compressible, shard_slices=2)
        packed = save_stack(
            tmp_path / "packed", compressible, shard_slices=2, compress=True
        )
        assert self._tree_bytes(packed) < self._tree_bytes(plain) // 2

    def test_fingerprint_stable_and_layout_sensitive(self, tmp_path, compressible):
        a = NpzShardSource(
            save_stack(tmp_path / "a", compressible, shard_slices=2, compress=True)
        )
        b = NpzShardSource(
            save_stack(tmp_path / "b", compressible, shard_slices=2, compress=True)
        )
        plain = NpzShardSource(
            save_stack(tmp_path / "c", compressible, shard_slices=2)
        )
        # Same content, same layout, same codec: identical identity.
        assert a.fingerprint() == b.fingerprint()
        # Compression changes the bytes on disk, hence the identity —
        # a resumed checkpoint must not mix codecs silently.
        assert a.fingerprint() != plain.fingerprint()

    def test_sink_roundtrip_and_shrink(self, tmp_path, compressible):
        plain = NpzShardSink(tmp_path / "plain", 6, 16)
        packed = NpzShardSink(tmp_path / "packed", 6, 16, compress=True)
        volume = (np.arange(6 * 16 * 16, dtype=np.float64) // 256).reshape(6, 16, 16)
        for sink in (plain, packed):
            sink.write(0, 3, volume[0:3])
            sink.write(3, 6, volume[3:6])
        npt.assert_array_equal(load_volume(packed.finalize()), volume)
        npt.assert_array_equal(
            load_volume(plain.finalize()), load_volume(tmp_path / "packed")
        )
        assert self._tree_bytes(tmp_path / "packed") < self._tree_bytes(
            tmp_path / "plain"
        )

    def test_make_sink_compress_mapping(self, tmp_path):
        sink = make_sink(tmp_path / "dir", 6, 4, compress=True)
        assert isinstance(sink, NpzShardSink) and sink.compress
        with pytest.raises(ValueError, match="cannot be compressed"):
            make_sink(tmp_path / "v.raw", 6, 4, compress=True)

    def test_pipeline_compress_flag_bit_exact(self, tmp_path, compressible):
        geo = ParallelBeamGeometry(24, 16)
        op, _ = preprocess(geo)
        sinos = np.stack([op.project_image(img[:16]) for img in
                          np.random.default_rng(3).uniform(0, 1, (6, 16, 16))])
        reference = reconstruct_stack(
            sinos, geo, stages=[], iterations=4, chunk_slices=2, operator=op,
            sink=str(tmp_path / "plain"),
        )
        packed = reconstruct_stack(
            sinos, geo, stages=[], iterations=4, chunk_slices=2, operator=op,
            sink=str(tmp_path / "packed"), compress=True,
        )
        npt.assert_array_equal(
            load_volume(packed.extra["output_path"]),
            load_volume(reference.extra["output_path"]),
        )
        op.close()


class _TransientSource(ArraySource):
    """Fails the first ``failures`` read attempts, then heals."""

    def __init__(self, stack, failures, exc=OSError("transient read hiccup")):
        super().__init__(stack)
        self.failures = failures
        self.exc = exc
        self.attempts = 0

    def read(self, start, stop):
        self.attempts += 1
        if self.failures > 0:
            self.failures -= 1
            raise self.exc
        return super().read(start, stop)


class TestReadRetry:
    """Transient source failures heal through the shared RetryPolicy and
    are visible as ``dataio.read_retries`` — never silent."""

    RANGES = [(0, 2), (2, 4), (4, 6)]
    FAST = RetryPolicy(max_retries=3, backoff_base=0.0)

    @pytest.mark.parametrize("prefetch", [0, 2])
    def test_transient_failures_heal(self, stack, prefetch):
        src = _TransientSource(stack, failures=2)
        with obs.capture() as cap:
            with Conveyor(src, self.RANGES, prefetch=prefetch,
                          read_retry=self.FAST) as cv:
                seen = {(a, b): chunk for a, b, chunk in cv.chunks()}
        for a, b in self.RANGES:
            npt.assert_array_equal(seen[(a, b)], stack[a:b])
        assert src.attempts == len(self.RANGES) + 2
        counters = {c.name: c.total for c in cap.counters.values()}
        assert counters["dataio.read_retries"] == 2

    @pytest.mark.parametrize("prefetch", [0, 2])
    def test_budget_exhausted_surfaces_original_error(self, stack, prefetch):
        src = _TransientSource(stack, failures=99)
        with pytest.raises(OSError, match="transient read hiccup"):
            with Conveyor(src, self.RANGES, prefetch=prefetch,
                          read_retry=RetryPolicy(max_retries=1,
                                                 backoff_base=0.0)) as cv:
                for _ in cv.chunks():
                    pass

    def test_corrupt_archive_is_transient(self, stack):
        # A half-written shard reads as BadZipFile/ValueError — retried
        # like any other transient error (NFS may expose mid-rename states).
        from zipfile import BadZipFile

        src = _TransientSource(stack, failures=1, exc=BadZipFile("bad magic"))
        with Conveyor(src, self.RANGES, read_retry=self.FAST) as cv:
            assert len(list(cv.chunks())) == 3

    def test_programming_errors_not_retried(self, stack):
        src = _TransientSource(stack, failures=5, exc=TypeError("a bug"))
        with pytest.raises(TypeError):
            with Conveyor(src, self.RANGES, read_retry=self.FAST) as cv:
                list(cv.chunks())
        assert src.attempts == 1  # no retry budget spent on bugs

    def test_default_policy_attached(self, stack):
        with Conveyor(ArraySource(stack), self.RANGES) as cv:
            assert isinstance(cv.read_retry, RetryPolicy)
            assert cv.read_retry.max_retries >= 1


class _ManualClock:
    def __init__(self, start=50.0):
        self.now = start

    def __call__(self):
        return self.now


class TestConveyorProgress:
    """ETA regression battery: zero-elapsed guard and resumed-run
    clamps (a resume used to divide pre-done slices by ~0 elapsed and
    could print a negative ETA)."""

    def _progress(self, total=100, initial_done=0):
        import io

        clock = _ManualClock()
        stream = io.StringIO()
        progress = ConveyorProgress(
            total, stream, initial_done=initial_done, clock=clock
        )
        return progress, clock, stream

    def test_zero_elapsed_shows_unknown_not_inf(self):
        progress, _clock, stream = self._progress()
        progress.update(10, (0, 0))  # clock has not advanced at all
        out = stream.getvalue()
        assert "0.0 slices/s" in out
        eta_text = out.split("eta")[1].split(")")[0]
        assert "?" in eta_text and "inf" not in out and "-" not in eta_text

    def test_steady_rate_eta(self):
        progress, clock, stream = self._progress()
        clock.now += 5.0
        progress.update(20, (1, 2))
        out = stream.getvalue()
        assert "20/100 slices" in out
        assert "4.0 slices/s" in out
        assert "eta  20.0s" in out

    def test_resume_excludes_pre_done_slices_from_rate(self):
        # 90 slices were done by a previous run; this run solved 2 in 1s.
        progress, clock, stream = self._progress(initial_done=90)
        clock.now += 1.0
        progress.update(92, (0, 0))
        out = stream.getvalue()
        assert "2.0 slices/s" in out  # NOT 92/s
        assert "eta   4.0s" in out

    def test_overshoot_never_negative(self):
        # done > total can transiently happen when a resumed manifest
        # overlaps a rerun range; the ETA must clamp at zero.
        progress, clock, stream = self._progress(total=10, initial_done=4)
        clock.now += 1.0
        progress.update(12, (0, 0))
        eta_text = stream.getvalue().split("eta")[1].split(")")[0]
        assert "-" not in eta_text
        assert "0.0s" in eta_text

    def test_quiet_until_first_update(self):
        progress, _clock, stream = self._progress()
        progress.done()
        assert stream.getvalue() == ""
        progress.update(1, (0, 0))
        progress.done()
        assert stream.getvalue().endswith("\n")
