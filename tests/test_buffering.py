"""Tests for multi-stage input buffering (paper Listing 3)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import BufferedMatrix, CSRMatrix, build_buffered


def _random_sorted(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    S = sp.random(rows, cols, density=density, random_state=rng, format="csr", dtype=np.float32)
    return CSRMatrix.from_scipy(S).sort_rows_by_index()


class TestCorrectness:
    @pytest.mark.parametrize("partition_size", [1, 8, 32])
    @pytest.mark.parametrize("buffer_bytes", [64, 512, 1 << 18])
    def test_both_kernels_match_csr(self, partition_size, buffer_bytes):
        A = _random_sorted(70, 90, 0.1, 0)
        B = build_buffered(A, partition_size, buffer_bytes)
        x = np.random.default_rng(1).random(90).astype(np.float32)
        ref = A.spmv(x)
        np.testing.assert_allclose(B.spmv(x), ref, atol=1e-4)
        np.testing.assert_allclose(B.spmv_vectorized(x), ref, atol=1e-4)

    def test_on_traced_matrix(self, ordered_medium):
        matrix, _, _ = ordered_medium
        B = build_buffered(matrix, partition_size=64, buffer_bytes=1024)
        x = np.random.default_rng(2).random(matrix.num_cols).astype(np.float32)
        np.testing.assert_allclose(
            B.spmv_vectorized(x), matrix.spmv(x), rtol=1e-4, atol=1e-4
        )

    @given(
        seed=st.integers(0, 300),
        partition_size=st.sampled_from([1, 3, 8, 17]),
        buffer_elements=st.sampled_from([1, 4, 16, 256]),
    )
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, seed, partition_size, buffer_elements):
        A = _random_sorted(25, 35, 0.2, seed)
        B = build_buffered(A, partition_size, buffer_elements * 4)
        x = np.random.default_rng(seed + 1).standard_normal(35).astype(np.float32)
        np.testing.assert_allclose(B.spmv_vectorized(x), A.spmv(x), atol=1e-3)

    def test_empty_matrix(self):
        A = CSRMatrix.from_scipy(sp.csr_matrix((6, 8), dtype=np.float32))
        B = build_buffered(A, 4, 1024)
        np.testing.assert_array_equal(
            B.spmv_vectorized(np.ones(8, dtype=np.float32)), np.zeros(6)
        )


class TestStructure:
    def test_stage_sizes_respect_capacity(self):
        A = _random_sorted(60, 200, 0.15, 3)
        B = build_buffered(A, 16, buffer_bytes=64)  # 16 elements per buffer
        stage_sizes = np.diff(B.stagedispl)
        assert stage_sizes.max() <= 16
        assert (stage_sizes > 0).all()

    def test_local_indices_fit_buffer(self):
        A = _random_sorted(60, 200, 0.15, 4)
        B = build_buffered(A, 16, buffer_bytes=64)
        assert B.ind.dtype == np.uint16
        assert B.ind.max() < 16

    def test_stages_per_partition_is_ceil_of_footprint(self):
        A = _random_sorted(40, 100, 0.25, 5)
        capacity = 8
        B = build_buffered(A, 10, buffer_bytes=capacity * 4)
        from repro.sparse import RowPartitions, partition_input_footprints

        fps = partition_input_footprints(A, RowPartitions(40, 10))
        expected = [max(1, -(-len(fp) // capacity)) for fp in fps]
        np.testing.assert_array_equal(B.stages_per_partition(), expected)

    def test_map_is_sorted_within_stage(self):
        """Stages follow domain order, preserving Hilbert locality."""
        A = _random_sorted(30, 80, 0.3, 6)
        B = build_buffered(A, 8, buffer_bytes=32)
        for s in range(B.num_stages):
            chunk = B.map[B.stagedispl[s] : B.stagedispl[s + 1]]
            assert np.all(np.diff(chunk) > 0)

    def test_map_covers_each_partition_footprint_once(self):
        A = _random_sorted(30, 50, 0.3, 7)
        B = build_buffered(A, 10, buffer_bytes=16)
        for part in range(B.partitions.num_partitions):
            s0, s1 = B.partdispl[part], B.partdispl[part + 1]
            stage_union = B.map[B.stagedispl[s0] : B.stagedispl[s1]]
            r0, r1 = B.partitions.bounds(part)
            cols = np.unique(A.ind[A.displ[r0] : A.displ[r1]])
            np.testing.assert_array_equal(np.sort(stage_union), cols)

    def test_nnz_preserved(self):
        A = _random_sorted(30, 50, 0.3, 8)
        B = build_buffered(A, 8, 128)
        assert B.nnz == A.nnz
        assert B.shape == A.shape

    def test_regular_bytes_per_fma(self):
        A = _random_sorted(10, 10, 0.5, 9)
        B = build_buffered(A, 4, 128)
        assert B.regular_bytes_per_fma() == 6.0  # 4 B value + 2 B uint16
        assert B.map_bytes() == 4 * B.map.shape[0]

    def test_buffer_bytes_property(self):
        A = _random_sorted(10, 10, 0.5, 10)
        B = build_buffered(A, 4, 8192)
        assert B.buffer_bytes == 8192
        assert B.buffer_elements == 2048


class TestLimits:
    def test_16bit_addressing_limit_enforced(self):
        """Paper 3.3.5: 16-bit addressing caps buffers at 256 KB."""
        A = _random_sorted(10, 10, 0.5, 11)
        build_buffered(A, 4, 256 * 1024)  # exactly the limit: OK
        with pytest.raises(ValueError):
            build_buffered(A, 4, 256 * 1024 + 4)

    def test_tiny_buffer_rejected(self):
        A = _random_sorted(10, 10, 0.5, 12)
        with pytest.raises(ValueError):
            build_buffered(A, 4, 2)

    def test_wrong_input_length_rejected(self):
        A = _random_sorted(10, 12, 0.5, 13)
        B = build_buffered(A, 4, 64)
        with pytest.raises(ValueError):
            B.spmv(np.ones(10, dtype=np.float32))
        with pytest.raises(ValueError):
            B.spmv_vectorized(np.ones(10, dtype=np.float32))
