"""Tests for the batched multi-RHS SpMV paths of all three kernels.

The contract under test: for every kernel layout (CSR, multi-stage
buffered, partition-padded ELL), ``spmv_batch(X)[:, j]`` is
**bit-identical** to ``spmv(X[:, j])`` — the batched path is the same
arithmetic in the same order, just amortizing the matrix streams over
``S`` right-hand sides — and the operator-level batch entry points
preserve adjointness per column.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import OperatorConfig, preprocess
from repro.sparse import build_buffered, build_ell, scan_transpose


@pytest.fixture(scope="module")
def batch_operator(request):
    from repro.geometry import ParallelBeamGeometry

    op, _ = preprocess(
        ParallelBeamGeometry(36, 24),
        config=OperatorConfig(kernel="buffered", partition_size=32, buffer_bytes=4096),
    )
    return op


def _slab(rng, n, s):
    return rng.normal(size=(n, s)).astype(np.float32)


class TestKernelBatchEquivalence:
    """spmv_batch column j == spmv(column j), bitwise, per layout."""

    def test_csr(self, medium_matrix, rng):
        X = _slab(rng, medium_matrix.num_cols, 5)
        Y = medium_matrix.spmv_batch(X)
        assert Y.shape == (medium_matrix.num_rows, 5)
        for j in range(5):
            assert np.array_equal(Y[:, j], medium_matrix.spmv(X[:, j]))

    def test_buffered(self, ordered_medium, rng):
        matrix, _, _ = ordered_medium
        buffered = build_buffered(matrix, partition_size=64, buffer_bytes=4096)
        X = _slab(rng, matrix.num_cols, 4)
        Y = buffered.spmv_batch(X)
        for j in range(4):
            assert np.array_equal(Y[:, j], buffered.spmv_vectorized(X[:, j]))

    def test_ell(self, ordered_medium, rng):
        matrix, _, _ = ordered_medium
        ell = build_ell(matrix, partition_size=64)
        X = _slab(rng, matrix.num_cols, 4)
        Y = ell.spmv_batch(X)
        for j in range(4):
            assert np.array_equal(Y[:, j], ell.spmv(X[:, j]))

    def test_transpose_csr(self, medium_matrix, rng):
        matrix_t = scan_transpose(medium_matrix)
        Y = _slab(rng, matrix_t.num_cols, 3)
        X = matrix_t.spmv_batch(Y)
        for j in range(3):
            assert np.array_equal(X[:, j], matrix_t.spmv(Y[:, j]))

    def test_single_column_slab(self, medium_matrix, rng):
        X = _slab(rng, medium_matrix.num_cols, 1)
        assert np.array_equal(
            medium_matrix.spmv_batch(X)[:, 0], medium_matrix.spmv(X[:, 0])
        )


class TestShapeValidation:
    def test_csr_rejects_1d(self, medium_matrix):
        with pytest.raises(ValueError, match="slab"):
            medium_matrix.spmv_batch(np.zeros(medium_matrix.num_cols, dtype=np.float32))

    def test_csr_rejects_wrong_rows(self, medium_matrix):
        with pytest.raises(ValueError, match="rows"):
            medium_matrix.spmv_batch(
                np.zeros((medium_matrix.num_cols + 1, 2), dtype=np.float32)
            )

    def test_ell_rejects_1d(self, ordered_medium):
        matrix, _, _ = ordered_medium
        ell = build_ell(matrix, partition_size=64)
        with pytest.raises(ValueError, match="slab"):
            ell.spmv_batch(np.zeros(matrix.num_cols, dtype=np.float32))

    def test_buffered_rejects_wrong_rows(self, ordered_medium):
        matrix, _, _ = ordered_medium
        buffered = build_buffered(matrix, partition_size=64, buffer_bytes=4096)
        with pytest.raises(ValueError, match="rows"):
            buffered.spmv_batch(np.zeros((matrix.num_cols + 3, 2), dtype=np.float32))


class TestOperatorBatch:
    """MemXCTOperator.forward_batch / adjoint_batch."""

    @pytest.mark.parametrize("kernel", ["csr", "buffered", "ell"])
    def test_matches_single(self, kernel, rng):
        from repro.geometry import ParallelBeamGeometry

        op, _ = preprocess(
            ParallelBeamGeometry(36, 24),
            config=OperatorConfig(kernel=kernel, partition_size=32, buffer_bytes=4096),
        )
        X = _slab(rng, op.num_pixels, 3)
        Y = op.forward_batch(X)
        for j in range(3):
            assert np.array_equal(Y[:, j], op.forward(X[:, j]))
        B = _slab(rng, op.num_rays, 3)
        Xb = op.adjoint_batch(B)
        for j in range(3):
            assert np.array_equal(Xb[:, j], op.adjoint(B[:, j]))

    def test_adjointness_per_column(self, batch_operator, rng):
        """<A x_j, y_j> == <x_j, A^T y_j> per column, to float32 accuracy."""
        op = batch_operator
        X = _slab(rng, op.num_pixels, 4)
        Y = _slab(rng, op.num_rays, 4)
        AX = op.forward_batch(X)
        AtY = op.adjoint_batch(Y)
        for j in range(4):
            lhs = float(AX[:, j].astype(np.float64) @ Y[:, j].astype(np.float64))
            rhs = float(X[:, j].astype(np.float64) @ AtY[:, j].astype(np.float64))
            assert lhs == pytest.approx(rhs, rel=1e-5)

    def test_obs_accounting_amortizes_regular_bytes(self, batch_operator, rng):
        """A batch of S counts S SpMVs of FLOPs/irregular traffic but
        charges the regular matrix stream exactly once."""
        op = batch_operator
        S = 6
        X = _slab(rng, op.num_pixels, S)
        with obs.capture() as cap_batch:
            op.forward_batch(X)
        with obs.capture() as cap_single:
            op.forward(X[:, 0])
        assert cap_batch.total(obs.SPMV_CALLS) == S
        assert cap_batch.total(obs.SPMV_FLOPS) == S * cap_single.total(obs.SPMV_FLOPS)
        assert cap_batch.total(obs.SPMV_IRREGULAR_BYTES) == (
            S * cap_single.total(obs.SPMV_IRREGULAR_BYTES)
        )
        # The amortization the batched path exists for:
        assert cap_batch.total(obs.SPMV_REGULAR_BYTES) == cap_single.total(
            obs.SPMV_REGULAR_BYTES
        )

    def test_batch_span_attrs(self, batch_operator, rng):
        op = batch_operator
        with obs.capture() as cap:
            op.forward_batch(_slab(rng, op.num_pixels, 3))
        (sp,) = cap.find_spans("spmv.forward")
        assert sp.attrs["batch"] == 3


class TestMatrixOperatorBatch:
    def test_solver_base_operator(self, medium_matrix, rng):
        from repro.solvers import MatrixOperator

        op = MatrixOperator(medium_matrix)
        X = _slab(rng, op.num_pixels, 3)
        Y = op.forward_batch(X)
        for j in range(3):
            assert np.array_equal(Y[:, j], op.forward(X[:, j]))
        B = _slab(rng, op.num_rays, 3)
        Xb = op.adjoint_batch(B)
        for j in range(3):
            assert np.array_equal(Xb[:, j], op.adjoint(B[:, j]))
