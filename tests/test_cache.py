"""The persistent operator-plan cache: fingerprints, the store,
``preprocess()`` integration, graceful degradation, and eviction."""

import json
import warnings

import numpy as np
import pytest

from repro import obs
from repro.cache import (
    CacheIntegrityWarning,
    PlanCache,
    default_cache_dir,
    fingerprint_inputs,
    plan_fingerprint,
)
from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.io import FORMAT_VERSION


@pytest.fixture()
def cache(tmp_path) -> PlanCache:
    return PlanCache(tmp_path / "plans")


class TestFingerprint:
    def test_stable_across_calls_and_instances(self, small_geometry):
        a = plan_fingerprint(small_geometry)
        b = plan_fingerprint(ParallelBeamGeometry(36, 24))
        assert a == b
        assert len(a) == 64 and set(a) <= set("0123456789abcdef")

    def test_sensitive_to_every_input(self, small_geometry):
        base = plan_fingerprint(small_geometry)
        variants = [
            plan_fingerprint(ParallelBeamGeometry(37, 24)),
            plan_fingerprint(ParallelBeamGeometry(36, 32)),
            plan_fingerprint(small_geometry, ordering="row-major"),
            plan_fingerprint(small_geometry, min_tiles=4),
            plan_fingerprint(small_geometry, tile_size=8),
            plan_fingerprint(small_geometry, config=OperatorConfig(kernel="csr")),
            plan_fingerprint(
                small_geometry,
                config=OperatorConfig(partition_size=64),
            ),
            plan_fingerprint(
                small_geometry,
                config=OperatorConfig(buffer_bytes=16384),
            ),
        ]
        assert base not in variants
        assert len(set(variants)) == len(variants)

    def test_float_inputs_hashed_exactly(self, small_geometry):
        """One-ulp geometry changes must map to a different plan."""
        base = plan_fingerprint(small_geometry)
        nudged = ParallelBeamGeometry(
            36, 24, angle_range=np.nextafter(small_geometry.angle_range, 4.0)
        )
        assert plan_fingerprint(nudged) != base

    def test_inputs_doc_pins_format_version(self, small_geometry):
        doc = fingerprint_inputs(small_geometry)
        assert doc["format_version"] == FORMAT_VERSION
        # The doc must be canonical-JSON-safe (what the hash consumes).
        json.dumps(doc, sort_keys=True)


class TestResolve:
    @pytest.mark.parametrize(
        "spec", [None, False, "off", "none", "", "disabled", "0", "OFF"]
    )
    def test_disabled_specs(self, spec):
        assert PlanCache.resolve(spec) is None

    @pytest.mark.parametrize("spec", [True, "auto"])
    def test_auto_uses_default_dir(self, spec):
        resolved = PlanCache.resolve(spec)
        assert resolved is not None
        assert resolved.root == default_cache_dir()

    def test_default_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_explicit_path_and_instance(self, tmp_path, cache):
        from pathlib import Path

        assert PlanCache.resolve(str(tmp_path)).root == Path(tmp_path)
        assert PlanCache.resolve(Path(tmp_path)).root == Path(tmp_path)
        assert PlanCache.resolve(cache) is cache

    def test_unknown_spec_rejected(self):
        with pytest.raises(TypeError, match="cache spec"):
            PlanCache.resolve(3.14)

    def test_max_bytes_env_and_validation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert PlanCache(tmp_path).max_bytes == 12345
        with pytest.raises(ValueError, match="max_bytes"):
            PlanCache(tmp_path, max_bytes=0)


class TestStoreLoad:
    def test_miss_returns_none_and_counts(self, cache):
        with obs.capture() as cap:
            assert cache.load("0" * 64) is None
        assert cap.total(obs.CACHE_MISSES) == 1
        assert cap.total(obs.CACHE_HITS) == 0

    @pytest.mark.parametrize("kernel", ["csr", "buffered", "ell"])
    def test_roundtrip_bit_identical_per_kernel(
        self, cache, small_geometry, kernel, rng
    ):
        config = OperatorConfig(kernel=kernel, partition_size=32, buffer_bytes=4096)
        op, _ = preprocess(small_geometry, config=config)
        key = plan_fingerprint(small_geometry, config)
        cache.store(key, op)
        loaded = cache.load(key)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.matrix.displ, op.matrix.displ)
        np.testing.assert_array_equal(loaded.matrix.ind, op.matrix.ind)
        np.testing.assert_array_equal(loaded.matrix.val, op.matrix.val)
        x = rng.random(op.num_pixels).astype(np.float32)
        y = rng.random(op.num_rays).astype(np.float32)
        # Bit-identical, not just close: the cached plan must execute
        # the same kernel over the same arrays.
        np.testing.assert_array_equal(loaded.forward(x), op.forward(x))
        np.testing.assert_array_equal(loaded.adjoint(y), op.adjoint(y))

    def test_meta_sidecar_written(self, cache, small_operator, small_geometry):
        key = "a" * 64
        cache.store(key, small_operator, extra_meta={"ordering": "pseudo-hilbert"})
        entry = cache.entry(key)
        assert entry is not None
        assert entry.meta["key"] == key
        assert entry.meta["nnz"] == small_operator.matrix.nnz
        assert entry.meta["geometry"]["num_angles"] == small_geometry.num_angles
        assert entry.meta["ordering"] == "pseudo-hilbert"
        assert entry.nbytes == entry.path.stat().st_size

    def test_entry_prefix_match_and_maintenance(self, cache, small_operator):
        cache.store("b" * 64, small_operator)
        cache.store("c" * 64, small_operator)
        assert cache.entry("b" * 8).key == "b" * 64
        assert cache.entry("zz") is None
        assert cache.total_bytes() == sum(e.nbytes for e in cache.entries())
        assert cache.discard("b" * 64) is True
        assert cache.discard("b" * 64) is False  # already gone
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_hit_observability(self, cache, small_operator):
        key = "d" * 64
        cache.store(key, small_operator)
        with obs.capture() as cap:
            assert cache.load(key) is not None
        assert cap.total(obs.CACHE_HITS) == 1
        assert cap.total(obs.CACHE_MISSES) == 0
        assert cap.total(obs.CACHE_BYTES_READ) == cache.entry(key).nbytes
        assert cap.span_names().count("cache.load") == 1
        (sp,) = cap.find_spans("cache.load")
        assert sp.attrs["key"] == key


class TestPreprocessIntegration:
    def test_cache_none_stores_nothing(self, tmp_path, small_geometry):
        _, report = preprocess(small_geometry, cache=None)
        assert report.cache_hit is False
        assert report.cache_key is None
        assert not (tmp_path / "plans").exists()

    def test_miss_then_hit_bit_identical(self, tmp_path, small_geometry, rng):
        cachedir = tmp_path / "plans"
        cold_op, cold = preprocess(small_geometry, cache=cachedir)
        assert cold.cache_hit is False
        assert cold.cache_key is not None
        assert cold.total_seconds > 0
        assert PlanCache(cachedir).entry(cold.cache_key) is not None

        warm_op, warm = preprocess(small_geometry, cache=cachedir)
        assert warm.cache_hit is True
        assert warm.cache_key == cold.cache_key
        assert warm.total_seconds == 0.0  # no stage ran
        x = rng.random(cold_op.num_pixels).astype(np.float32)
        np.testing.assert_array_equal(warm_op.forward(x), cold_op.forward(x))
        assert warm_op.config == cold_op.config

    def test_hit_skips_all_stage_spans(self, tmp_path, small_geometry):
        cachedir = tmp_path / "plans"
        preprocess(small_geometry, cache=cachedir)
        with obs.capture() as cap:
            _, report = preprocess(small_geometry, cache=cachedir)
        assert report.cache_hit is True
        assert cap.find_spans("cache.load")
        for stage in (
            "preprocess",
            "preprocess.ordering",
            "preprocess.tracing",
            "preprocess.transpose",
            "preprocess.partitioning",
        ):
            assert cap.find_spans(stage) == [], stage

    def test_auto_spec_reaches_env_directory(self, tmp_path, monkeypatch, small_geometry):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
        _, report = preprocess(small_geometry, cache="auto")
        assert PlanCache.resolve("auto").entry(report.cache_key) is not None

    def test_distinct_configs_do_not_collide(self, tmp_path, small_geometry, rng):
        cachedir = tmp_path / "plans"
        csr = OperatorConfig(kernel="csr")
        ell = OperatorConfig(kernel="ell", partition_size=32)
        preprocess(small_geometry, config=csr, cache=cachedir)
        op, report = preprocess(small_geometry, config=ell, cache=cachedir)
        assert report.cache_hit is False  # different plan, different key
        assert op.config.kernel == "ell"
        op2, report2 = preprocess(small_geometry, config=ell, cache=cachedir)
        assert report2.cache_hit is True
        assert op2.ell_forward is not None


class TestGracefulDegradation:
    def _prime(self, cachedir, geometry):
        _, report = preprocess(geometry, cache=cachedir)
        return PlanCache(cachedir), report.cache_key

    def test_corrupt_entry_warns_retraces_and_heals(
        self, tmp_path, small_geometry, rng
    ):
        cache, key = self._prime(tmp_path / "plans", small_geometry)
        path = cache.plan_path(key)
        blob = bytearray(path.read_bytes())
        mid = len(blob) // 2
        blob[mid : mid + 64] = b"\xff" * 64  # silent bit rot
        path.write_bytes(bytes(blob))

        with pytest.warns(CacheIntegrityWarning, match="re-tracing"):
            op, report = preprocess(small_geometry, cache=cache)
        assert report.cache_hit is False  # degraded to a full re-trace
        x = rng.random(op.num_pixels).astype(np.float32)
        assert np.isfinite(op.forward(x)).all()
        # The bad entry was replaced: the next run is a clean hit.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _, again = preprocess(small_geometry, cache=cache)
        assert again.cache_hit is True

    def test_truncated_entry_is_a_miss(self, tmp_path, small_geometry):
        cache, key = self._prime(tmp_path / "plans", small_geometry)
        path = cache.plan_path(key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        with pytest.warns(CacheIntegrityWarning):
            assert cache.load(key) is None
        assert not path.exists()  # discarded, not left to fail again

    def test_garbage_entry_is_a_miss(self, tmp_path, small_geometry):
        cache, key = self._prime(tmp_path / "plans", small_geometry)
        cache.plan_path(key).write_bytes(b"not an archive at all")
        with pytest.warns(CacheIntegrityWarning):
            _, report = preprocess(small_geometry, cache=cache)
        assert report.cache_hit is False

    def test_version_stale_entry_is_a_miss(self, tmp_path, small_geometry):
        cache, key = self._prime(tmp_path / "plans", small_geometry)
        path = cache.plan_path(key)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["format_version"] = np.int64(99)
        np.savez(path, **arrays)
        with pytest.warns(CacheIntegrityWarning, match="unusable"):
            assert cache.load(key) is None

    def test_degradation_counts_as_miss(self, tmp_path, small_geometry):
        cache, key = self._prime(tmp_path / "plans", small_geometry)
        cache.plan_path(key).write_bytes(b"junk")
        with obs.capture() as cap, pytest.warns(CacheIntegrityWarning):
            cache.load(key)
        assert cap.total(obs.CACHE_MISSES) == 1
        assert cap.total(obs.CACHE_HITS) == 0


class TestEviction:
    def test_lru_eviction_under_size_cap(self, tmp_path, small_geometry):
        op, _ = preprocess(small_geometry, config=OperatorConfig(kernel="csr"))
        probe = PlanCache(tmp_path / "probe")
        probe.store("0" * 64, op)
        entry_bytes = probe.total_bytes()

        cache = PlanCache(tmp_path / "plans", max_bytes=int(entry_bytes * 2.5))
        with obs.capture() as cap:
            cache.store("a" * 64, op)
            cache.store("b" * 64, op)
            cache.load("a" * 64)  # recency bump: "b" is now the LRU entry
            cache.store("c" * 64, op)  # over cap -> evict "b"
        assert sorted(e.key[0] for e in cache.entries()) == ["a", "c"]
        assert cap.total(obs.CACHE_EVICTIONS) == 1

    def test_most_recent_entry_survives_even_oversized(
        self, tmp_path, small_operator
    ):
        cache = PlanCache(tmp_path / "plans", max_bytes=1)
        cache.store("a" * 64, small_operator)
        assert [e.key for e in cache.entries()] == ["a" * 64]
        cache.store("b" * 64, small_operator)
        assert [e.key for e in cache.entries()] == ["b" * 64]
