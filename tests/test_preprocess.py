"""Tests for the four-step preprocessing pipeline (paper Section 3.5)."""

import numpy as np
import pytest

from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.sparse import CSRMatrix
from repro.trace import build_projection_matrix


class TestPreprocess:
    def test_report_has_all_steps(self, small_geometry):
        _, report = preprocess(small_geometry)
        assert report.ordering_seconds >= 0
        assert report.tracing_seconds > 0
        assert report.transpose_seconds > 0
        assert report.partitioning_seconds >= 0
        assert report.total_seconds == pytest.approx(
            report.ordering_seconds
            + report.tracing_seconds
            + report.transpose_seconds
            + report.partitioning_seconds
        )

    def test_matrix_is_permuted_raw_trace(self, small_geometry):
        """The ordered matrix must equal the raw trace re-indexed by the
        orderings — preprocessing only reorganizes, never changes, A."""
        op, _ = preprocess(small_geometry)
        raw = CSRMatrix.from_scipy(build_projection_matrix(small_geometry))
        expected = raw.permute(op.sino_ordering.perm, op.tomo_ordering.rank)
        np.testing.assert_allclose(
            op.matrix.to_scipy().toarray(), expected.to_scipy().toarray(), atol=1e-7
        )

    def test_transpose_is_consistent(self, small_geometry):
        op, _ = preprocess(small_geometry)
        np.testing.assert_allclose(
            op.transpose.to_scipy().toarray(),
            op.matrix.to_scipy().toarray().T,
            atol=1e-7,
        )

    def test_buffered_structures_built_only_for_buffered_kernel(self, small_geometry):
        op_b, _ = preprocess(small_geometry, config=OperatorConfig(kernel="buffered"))
        assert op_b.buffered_forward is not None
        assert op_b.buffered_adjoint is not None
        op_c, _ = preprocess(small_geometry, config=OperatorConfig(kernel="csr"))
        assert op_c.buffered_forward is None
        op_e, _ = preprocess(small_geometry, config=OperatorConfig(kernel="ell"))
        assert op_e.ell_forward is not None and op_e.buffered_forward is None

    @pytest.mark.parametrize("ordering", ["row-major", "morton", "hilbert", "pseudo-hilbert"])
    def test_all_orderings_work(self, ordering):
        g = ParallelBeamGeometry(12, 8)
        op, _ = preprocess(g, ordering=ordering)
        assert op.tomo_ordering.name == ordering
        x = np.ones(op.num_pixels, dtype=np.float32)
        assert op.forward(x).sum() > 0

    def test_rows_sorted_by_column(self, small_geometry):
        op, _ = preprocess(small_geometry)
        m = op.matrix
        for r in range(0, m.num_rows, 37):
            seg = m.ind[m.displ[r] : m.displ[r + 1]]
            assert np.all(np.diff(seg) >= 0)

    def test_preprocessing_amortizes_across_slices(self, small_geometry, rng):
        """Reusing the operator for a second 'slice' must not re-trace
        (the Table 5 many-slice argument): reconstruct with a supplied
        operator and confirm the report carries zero tracing time."""
        from repro.core import reconstruct

        op, report = preprocess(small_geometry)
        sino = rng.random(small_geometry.sinogram_shape)
        res = reconstruct(sino, small_geometry, iterations=2, operator=op)
        assert res.preprocess_report.tracing_seconds == 0.0
        assert res.operator is op
