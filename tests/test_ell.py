"""Tests for partition-padded ELL storage (GPU-style layout)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import CSRMatrix, build_ell


def _random_sparse(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    return sp.random(rows, cols, density=density, random_state=rng, format="csr", dtype=np.float32)


class TestELL:
    @pytest.mark.parametrize("partition_size", [1, 4, 16, 64])
    def test_spmv_matches_csr(self, partition_size):
        S = _random_sparse(50, 37, 0.15, 0)
        A = CSRMatrix.from_scipy(S)
        E = build_ell(A, partition_size)
        x = np.random.default_rng(1).random(37).astype(np.float32)
        np.testing.assert_allclose(E.spmv(x), A.spmv(x), atol=1e-4)

    def test_partition_level_padding_beats_matrix_level(self):
        """One long row must only pad its own partition — the point of
        partition-level ELL (paper Section 3.1.4)."""
        dense = np.zeros((32, 32), dtype=np.float32)
        dense[:, 0] = 1.0  # every row has 1 nnz ...
        dense[0, :] = 1.0  # ... except row 0, which has 32
        A = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        E = build_ell(A, partition_size=8)
        matrix_level_padded = 32 * 32  # global width = 32
        assert E.padded_nnz < matrix_level_padded
        assert E.widths[0] == 32 and (E.widths[1:] == 1).all()

    def test_padded_slots_are_zero(self):
        A = CSRMatrix.from_scipy(_random_sparse(20, 20, 0.2, 2))
        E = build_ell(A, 8)
        for ind, val in zip(E.ind_slabs, E.val_slabs):
            pad = val == 0
            assert (ind[pad] == 0).all()

    def test_padding_overhead_range(self):
        A = CSRMatrix.from_scipy(_random_sparse(40, 40, 0.2, 3))
        E = build_ell(A, 8)
        assert 0.0 <= E.padding_overhead < 1.0

    def test_empty_partition_tail(self):
        """Row count not divisible by partition size."""
        S = _random_sparse(13, 9, 0.4, 4)
        A = CSRMatrix.from_scipy(S)
        E = build_ell(A, 5)
        assert E.partitions.num_partitions == 3
        x = np.random.default_rng(5).random(9).astype(np.float32)
        np.testing.assert_allclose(E.spmv(x), A.spmv(x), atol=1e-4)

    def test_wrong_input_length_rejected(self):
        E = build_ell(CSRMatrix.from_scipy(_random_sparse(6, 7, 0.5, 6)), 4)
        with pytest.raises(ValueError):
            E.spmv(np.ones(6, dtype=np.float32))

    def test_traced_matrix(self, small_matrix):
        E = build_ell(small_matrix, 16)
        x = np.random.default_rng(7).random(small_matrix.num_cols).astype(np.float32)
        np.testing.assert_allclose(E.spmv(x), small_matrix.spmv(x), rtol=1e-4, atol=1e-4)
