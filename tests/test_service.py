"""The service battery: journal, admission, coalescing, deadlines,
retries, recovery, chaos, and the HTTP front end.

The load-bearing invariants, from docs/service.md:

* acknowledge only after journaling — ``kill -9`` at any instant loses
  no acknowledged job, and recovered results are **bit-exact** against
  an uninterrupted run (deterministic solves + per-column-exact
  batching make re-grouping safe);
* backpressure is explicit — a full queue or a rate-limited tenant is
  a 429 with Retry-After, never a silent drop;
* compatible concurrent requests coalesce into one multi-RHS solve;
* deadlines cancel mid-solve via the solver callback hook;
* transient failures heal through the shared RetryPolicy.

Subprocess tests (kill -9, SIGTERM) drive the real CLI; everything
else exercises the engine in-process for speed and determinism.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs, reconstruct
from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.persist import (
    CorruptArchiveError,
    RecordLog,
    RecordLogError,
    atomic_savez_checked,
    load_checked_npz,
)
from repro.resilience import CheckpointManager, RetryPolicy
from repro.service import (
    DroppedSubmissionError,
    JobFailedError,
    JobJournal,
    JobSpec,
    QueueFullError,
    RateLimitedError,
    ReconService,
    ResultNotReadyError,
    ServiceClient,
    ServiceConfig,
    ServiceFaultConfig,
    ServiceServer,
    UnknownJobError,
    parse_service_fault_spec,
)
from repro.solvers import cgls, mlem, sirt


RNG = np.random.default_rng(20260808)
ANGLES, CHANNELS = 36, 24


def sino(seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).random((ANGLES, CHANNELS))


def spec(**kw) -> JobSpec:
    kw.setdefault("num_angles", ANGLES)
    kw.setdefault("num_channels", CHANNELS)
    kw.setdefault("iterations", 6)
    return JobSpec(**kw)


def make_engine(tmp_path, *, clock=None, monotonic=None, **cfg) -> ReconService:
    cfg.setdefault("spool", str(tmp_path / "spool"))
    cfg.setdefault("coalesce_window_s", 0.0)
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    if monotonic is not None:
        kwargs["monotonic"] = monotonic
    return ReconService(ServiceConfig(**cfg), **kwargs)


def reference(sinogram, **kw) -> np.ndarray:
    kw.setdefault("iterations", 6)
    return reconstruct(sinogram, **kw).image


# -- persist primitives --------------------------------------------------


class TestRecordLog:
    def test_roundtrip(self, tmp_path):
        log = RecordLog(tmp_path / "log")
        payloads = [b"alpha", b"", b"\x00\xff" * 100]
        for p in payloads:
            log.append(p)
        log.close()
        assert RecordLog(tmp_path / "log").replay() == payloads

    def test_missing_file_is_empty(self, tmp_path):
        assert RecordLog(tmp_path / "nope").replay() == []

    @pytest.mark.parametrize("cut", [1, 4, 7, 10])
    def test_torn_tail_dropped(self, tmp_path, cut):
        path = tmp_path / "log"
        log = RecordLog(path)
        log.append(b"intact")
        log.append(b"will-be-torn")
        log.close()
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - cut])  # kill -9 mid-append
        assert RecordLog(path).replay() == [b"intact"]

    def test_corrupt_middle_raises(self, tmp_path):
        path = tmp_path / "log"
        log = RecordLog(path)
        log.append(b"first-record")
        log.append(b"second-record")
        log.close()
        blob = bytearray(path.read_bytes())
        blob[12] ^= 0xFF  # flip a payload byte of the FIRST record
        path.write_bytes(bytes(blob))
        with pytest.raises(RecordLogError):
            RecordLog(path).replay()

    def test_append_after_replay(self, tmp_path):
        path = tmp_path / "log"
        with RecordLog(path) as log:
            log.append(b"one")
        with RecordLog(path) as log:
            assert log.replay() == [b"one"]
            log.append(b"two")
            assert log.replay() == [b"one", b"two"]


class TestCheckedArchive:
    def test_roundtrip(self, tmp_path):
        payload = {"image": RNG.random((8, 8)), "meta": np.uint32(7)}
        atomic_savez_checked(tmp_path / "a.npz", payload)
        loaded = load_checked_npz(tmp_path / "a.npz")
        assert np.array_equal(loaded["image"], payload["image"])
        assert "checksum" not in loaded

    def test_bit_flip_detected(self, tmp_path):
        atomic_savez_checked(tmp_path / "a.npz", {"x": np.arange(64.0)})
        blob = bytearray((tmp_path / "a.npz").read_bytes())
        blob[len(blob) // 2] ^= 0x01
        (tmp_path / "a.npz").write_bytes(bytes(blob))
        with pytest.raises(CorruptArchiveError):
            load_checked_npz(tmp_path / "a.npz")

    def test_unreadable_raises(self, tmp_path):
        (tmp_path / "junk.npz").write_bytes(b"not a zip at all")
        with pytest.raises(CorruptArchiveError):
            load_checked_npz(tmp_path / "junk.npz")


class TestRetryPolicy:
    def test_schedule(self):
        policy = RetryPolicy(max_retries=3, backoff_base=0.1, backoff_cap=0.25)
        assert policy.delays() == [0.1, 0.2, 0.25]
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


# -- fault spec ----------------------------------------------------------


class TestServiceFaults:
    def test_parse(self):
        cfg = parse_service_fault_spec(
            "drop=0.1, delay=0.2, delay_s=0.01, crash=0.3, "
            "crash_first=2, die_at=5, seed=9"
        )
        assert cfg == ServiceFaultConfig(
            drop=0.1, delay=0.2, delay_s=0.01, crash=0.3,
            crash_first=2, die_at=5, seed=9,
        )
        assert cfg.any_faults

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown service fault key"):
            parse_service_fault_spec("explode=1.0")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            ServiceFaultConfig(drop=1.0)

    def test_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_FAULTS", raising=False)
        assert ServiceFaultConfig.from_env() is None
        monkeypatch.setenv("REPRO_SERVICE_FAULTS", "crash=0.5,seed=3")
        assert ServiceFaultConfig.from_env() == ServiceFaultConfig(
            crash=0.5, seed=3
        )


# -- job spec ------------------------------------------------------------


class TestJobSpec:
    def test_roundtrip(self):
        s = spec(solver="sirt", tolerance=1e-6, deadline_s=5.0, tenant="t1")
        assert JobSpec.from_dict(s.to_dict()) == s

    def test_validation(self):
        with pytest.raises(ValueError, match="solver"):
            spec(solver="fbp")
        with pytest.raises(ValueError):
            spec(iterations=0)
        with pytest.raises(ValueError):
            spec(deadline_s=0.0)
        with pytest.raises(ValueError):
            spec(tenant="")

    def test_coalesce_key(self):
        assert spec(tenant="a").coalesce_key == spec(tenant="b").coalesce_key
        assert spec(iterations=6).coalesce_key != spec(iterations=7).coalesce_key
        assert spec().coalesce_key != spec(dtype="float32").coalesce_key


# -- journal -------------------------------------------------------------


class TestJobJournal:
    def test_replay_folds_states(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_accepted("a", {"solver": "cg"}, accepted_wall=1.0)
        journal.record_accepted("b", {"solver": "cg"})
        journal.record_done("a", iterations=6)
        journal.record_failed("b", "boom")
        journal.record_done("ghost")  # terminal for unknown job: ignored
        entries = journal.replay()
        assert entries["a"].state == "done"
        assert entries["b"].state == "failed" and entries["b"].error == "boom"
        assert "ghost" not in entries
        assert [e.seq for e in sorted(entries.values(), key=lambda e: e.seq)] == [0, 1]

    def test_input_roundtrip_and_verify(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.save_input("j1", sino(1), spec().to_dict())
        loaded, doc = journal.load_input("j1")
        assert np.array_equal(loaded, sino(1))
        assert JobSpec.from_dict(doc) == spec()
        assert journal.verify_input("j1")
        journal.input_path("j1").write_bytes(b"garbage")
        assert not journal.verify_input("j1")
        assert not journal.verify_input("never-existed")


# -- engine: happy path --------------------------------------------------


class TestEngineSolve:
    def test_single_job_bit_exact(self, tmp_path):
        with make_engine(tmp_path) as svc:
            svc.start(recover=False)
            ack = svc.submit(sino(0), spec())
            assert ack["state"] == "queued"
            assert svc.wait([ack["job_id"]], timeout=60)
            assert np.array_equal(svc.result(ack["job_id"]), reference(sino(0)))
            status = svc.status(ack["job_id"])
            assert status["state"] == "done"
            assert status["attempts"] == 1
            assert status["iterations_run"] == 6

    @pytest.mark.parametrize("solver", ["cg", "sirt", "mlem"])
    def test_all_solvers(self, tmp_path, solver):
        measured = np.abs(sino(2)) + 0.1  # mlem needs positive data
        # mlem has no `reconstruct` front end, so reference every solver
        # through the solver API directly.
        op, _ = preprocess(ParallelBeamGeometry(ANGLES, CHANNELS))
        solve_fn = {"cg": cgls, "sirt": sirt, "mlem": mlem}[solver]
        solve = solve_fn(op, op.sinogram_to_ordered(measured), num_iterations=6)
        expected = op.ordered_to_image(solve.x)
        op.close()
        with make_engine(tmp_path) as svc:
            svc.start(recover=False)
            ack = svc.submit(measured, spec(solver=solver))
            assert svc.wait([ack["job_id"]], timeout=60)
            assert np.array_equal(svc.result(ack["job_id"]), expected)

    def test_float32_job_matches_fp32_reconstruct(self, tmp_path):
        with make_engine(tmp_path) as svc:
            svc.start(recover=False)
            ack = svc.submit(sino(3), spec(dtype="float32"))
            assert svc.wait([ack["job_id"]], timeout=60)
            assert np.array_equal(
                svc.result(ack["job_id"]),
                reference(sino(3), dtype="float32"),
            )

    def test_unknown_and_not_ready(self, tmp_path):
        with make_engine(tmp_path) as svc:
            with pytest.raises(UnknownJobError):
                svc.status("nope")
            ack = svc.submit(sino(0), spec())  # scheduler never started
            with pytest.raises(ResultNotReadyError):
                svc.result(ack["job_id"])

    def test_bad_sinogram_rejected(self, tmp_path):
        with make_engine(tmp_path) as svc:
            with pytest.raises(ValueError, match="shape"):
                svc.submit(np.zeros((2, 2)), spec())
            bad = sino(0).copy()
            bad[0, 0] = np.nan
            with pytest.raises(ValueError, match="finite"):
                svc.submit(bad, spec())


class TestCoalescing:
    def test_queued_jobs_coalesce_into_one_batch(self, tmp_path):
        sinos = [sino(i) for i in range(4)]
        with make_engine(tmp_path) as svc:
            acks = [svc.submit(s, spec(tenant=f"t{i % 2}"))
                    for i, s in enumerate(sinos)]
            svc.start(recover=False)  # queue drains as ONE dispatch
            assert svc.wait(timeout=60)
            for s, ack in zip(sinos, acks):
                assert np.array_equal(svc.result(ack["job_id"]), reference(s))
                assert svc.status(ack["job_id"])["batch_size"] == 4
            with obs.capture() as cap:
                svc.sync_obs()
            counters = {c.name: c.total for c in cap.counters.values()}
            assert counters[obs.SERVICE_BATCHES] == 1
            assert counters[obs.SERVICE_COALESCED_JOBS] == 4
            assert counters[obs.SERVICE_COMPLETED] == 4

    def test_incompatible_jobs_split_batches(self, tmp_path):
        with make_engine(tmp_path) as svc:
            a = svc.submit(sino(0), spec(iterations=6))
            b = svc.submit(sino(1), spec(iterations=7))
            svc.start(recover=False)
            assert svc.wait(timeout=60)
            assert svc.status(a["job_id"])["batch_size"] == 1
            assert svc.status(b["job_id"])["batch_size"] == 1
            with obs.capture() as cap:
                svc.sync_obs()
            counters = {c.name: c.total for c in cap.counters.values()}
            assert counters[obs.SERVICE_BATCHES] == 2

    def test_max_batch_respected(self, tmp_path):
        with make_engine(tmp_path, max_batch=2, queue_limit=8) as svc:
            acks = [svc.submit(sino(i), spec()) for i in range(3)]
            svc.start(recover=False)
            assert svc.wait(timeout=60)
            sizes = sorted(svc.status(a["job_id"])["batch_size"] for a in acks)
            assert sizes == [1, 2, 2]


# -- admission control ---------------------------------------------------


class TestBackpressure:
    def test_queue_full_raises_with_retry_after(self, tmp_path):
        with make_engine(tmp_path, queue_limit=2) as svc:
            svc.submit(sino(0), spec())
            svc.submit(sino(1), spec())
            with pytest.raises(QueueFullError) as err:
                svc.submit(sino(2), spec())
            assert err.value.retry_after > 0
            with obs.capture() as cap:
                svc.sync_obs()
            counters = {c.name: c.total for c in cap.counters.values()}
            assert counters[obs.SERVICE_SUBMITTED] == 3
            assert counters[obs.SERVICE_REJECTED] == 1

    def test_rejection_not_journaled(self, tmp_path):
        with make_engine(tmp_path, queue_limit=1) as svc:
            svc.submit(sino(0), spec())
            with pytest.raises(QueueFullError):
                svc.submit(sino(1), spec())
            assert len(svc.journal.replay()) == 1  # only the accepted job

    def test_rate_limit_per_tenant(self, tmp_path):
        clock = FakeMonotonic()
        svc = make_engine(
            tmp_path, rate_limit=1.0, rate_burst=2.0, queue_limit=64,
            monotonic=clock,
        )
        with svc:
            svc.submit(sino(0), spec(tenant="greedy"))
            svc.submit(sino(1), spec(tenant="greedy"))
            with pytest.raises(RateLimitedError) as err:
                svc.submit(sino(2), spec(tenant="greedy"))
            assert 0 < err.value.retry_after <= 1.0
            # Another tenant is unaffected by greedy's exhaustion.
            svc.submit(sino(3), spec(tenant="patient"))
            # Tokens refill with time.
            clock.advance(1.5)
            svc.submit(sino(4), spec(tenant="greedy"))


class FakeMonotonic:
    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TickClock:
    """Wall clock that advances a fixed step per call — deterministic
    deadline expiry without sleeping."""

    def __init__(self, start: float = 1000.0, step: float = 0.0):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# -- deadlines -----------------------------------------------------------


class TestDeadlines:
    def test_expired_before_dispatch(self, tmp_path):
        clock = TickClock(step=0.0)
        with make_engine(tmp_path, clock=clock) as svc:
            ack = svc.submit(sino(0), spec(deadline_s=5.0))
            clock.now += 10.0  # deadline passes while queued
            svc.start(recover=False)
            assert svc.wait([ack["job_id"]], timeout=30)
            status = svc.status(ack["job_id"])
            assert status["state"] == "expired"
            with pytest.raises(JobFailedError, match="expired"):
                svc.result(ack["job_id"])
            entries = svc.journal.replay()
            assert entries[ack["job_id"]].state == "expired"

    def test_cancelled_mid_solve(self, tmp_path):
        # Each clock call advances 1s: accepted at t0, the per-iteration
        # deadline check crosses deadline_s=3 after a few iterations of
        # a 50-iteration budget — the solve is cancelled, not finished.
        clock = TickClock(step=1.0)
        with make_engine(tmp_path, clock=clock) as svc:
            ack = svc.submit(sino(0), spec(iterations=50, deadline_s=3.0))
            svc.start(recover=False)
            assert svc.wait([ack["job_id"]], timeout=30)
            status = svc.status(ack["job_id"])
            assert status["state"] == "expired"

    def test_expired_peer_does_not_kill_batch(self, tmp_path):
        clock = TickClock(step=0.0)
        with make_engine(tmp_path, clock=clock) as svc:
            doomed = svc.submit(sino(0), spec(deadline_s=1.0))
            healthy = svc.submit(sino(1), spec())
            clock.now += 5.0
            svc.start(recover=False)
            assert svc.wait(timeout=60)
            assert svc.status(doomed["job_id"])["state"] == "expired"
            assert svc.status(healthy["job_id"])["state"] == "done"
            assert np.array_equal(
                svc.result(healthy["job_id"]), reference(sino(1))
            )


# -- retries -------------------------------------------------------------


class TestRetries:
    def test_transient_crash_healed(self, tmp_path):
        svc = make_engine(
            tmp_path,
            faults=ServiceFaultConfig(crash_first=1),
            retry=RetryPolicy(max_retries=2, backoff_base=0.0),
        )
        with svc:
            svc.start(recover=False)
            ack = svc.submit(sino(0), spec())
            assert svc.wait([ack["job_id"]], timeout=60)
            status = svc.status(ack["job_id"])
            assert status["state"] == "done"
            assert status["attempts"] == 2
            assert np.array_equal(svc.result(ack["job_id"]), reference(sino(0)))
            with obs.capture() as cap:
                svc.sync_obs()
            counters = {c.name: c.total for c in cap.counters.values()}
            assert counters[obs.SERVICE_RETRIES] == 1

    def test_budget_exhausted_fails_explicitly(self, tmp_path):
        svc = make_engine(
            tmp_path,
            faults=ServiceFaultConfig(crash_first=100),
            retry=RetryPolicy(max_retries=1, backoff_base=0.0),
        )
        with svc:
            svc.start(recover=False)
            ack = svc.submit(sino(0), spec())
            assert svc.wait([ack["job_id"]], timeout=60)
            status = svc.status(ack["job_id"])
            assert status["state"] == "failed"
            assert "InjectedSolveCrash" in status["error"]
            with pytest.raises(JobFailedError):
                svc.result(ack["job_id"])
            entries = svc.journal.replay()
            assert entries[ack["job_id"]].state == "failed"


# -- recovery ------------------------------------------------------------


class TestRecovery:
    def test_acknowledged_jobs_survive_restart(self, tmp_path):
        sinos = [sino(i) for i in range(3)]
        svc1 = make_engine(tmp_path)
        acks = [svc1.submit(s, spec()) for s in sinos]  # never scheduled
        svc1.close()

        svc2 = make_engine(tmp_path)
        with svc2:
            svc2.start(recover=True)
            assert svc2.wait(timeout=60)
            for s, ack in zip(sinos, acks):
                assert np.array_equal(svc2.result(ack["job_id"]), reference(s))
                assert svc2.status(ack["job_id"])["recovered"]
            with obs.capture() as cap:
                svc2.sync_obs()
            counters = {c.name: c.total for c in cap.counters.values()}
            assert counters[obs.SERVICE_RECOVERED] == 3

    def test_terminal_jobs_stay_queryable(self, tmp_path):
        svc1 = make_engine(tmp_path)
        with svc1:
            svc1.start(recover=False)
            ack = svc1.submit(sino(0), spec())
            assert svc1.wait([ack["job_id"]], timeout=60)
        svc2 = make_engine(tmp_path)
        with svc2:
            svc2.start(recover=True)
            assert svc2.status(ack["job_id"])["state"] == "done"
            assert np.array_equal(svc2.result(ack["job_id"]), reference(sino(0)))

    def test_corrupt_input_fails_loudly(self, tmp_path):
        svc1 = make_engine(tmp_path)
        ack = svc1.submit(sino(0), spec())
        svc1.close()
        # Simulate on-disk rot between crash and restart.
        (tmp_path / "spool" / "jobs" / ack["job_id"] / "input.npz").write_bytes(
            b"rotten"
        )
        svc2 = make_engine(tmp_path)
        with svc2:
            svc2.start(recover=True)
            status = svc2.status(ack["job_id"])
            assert status["state"] == "failed"
            assert "corrupt" in status["error"]
            entries = svc2.journal.replay()
            assert entries[ack["job_id"]].state == "failed"

    def test_torn_journal_tail_tolerated(self, tmp_path):
        svc1 = make_engine(tmp_path)
        ack = svc1.submit(sino(0), spec())
        svc1.close()
        log = tmp_path / "spool" / "journal.log"
        blob = log.read_bytes()
        log.write_bytes(blob + blob[-5:])  # torn frame appended by a crash
        svc2 = make_engine(tmp_path)
        with svc2:
            svc2.start(recover=True)
            assert svc2.wait(timeout=60)
            assert np.array_equal(svc2.result(ack["job_id"]), reference(sino(0)))

    def test_checkpointed_job_resumes_bit_exact(self, tmp_path):
        svc = make_engine(tmp_path)
        ack = svc.submit(sino(0), spec(iterations=10, checkpoint_every=3))
        # Simulate a previous run killed mid-solve: leave a real
        # iteration-3 checkpoint in the job's spool slot.
        geometry = ParallelBeamGeometry(ANGLES, CHANNELS)
        op, _ = preprocess(geometry)
        y = op.sinogram_to_ordered(sino(0))
        manager = CheckpointManager(
            svc.journal.checkpoint_path(ack["job_id"]), every=3
        )
        cgls(op, y, num_iterations=3, checkpoint=manager)
        op.close()
        with svc:
            svc.start(recover=False)
            assert svc.wait([ack["job_id"]], timeout=60)
            status = svc.status(ack["job_id"])
            assert status["state"] == "done"
            assert status["resumed_iteration"] == 3
            assert np.array_equal(
                svc.result(ack["job_id"]), reference(sino(0), iterations=10)
            )


# -- spool eviction ------------------------------------------------------


class TestEviction:
    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="result_ttl_s"):
            make_engine(tmp_path, result_ttl_s=0.0)
        with pytest.raises(ValueError, match="result_ttl_s"):
            make_engine(tmp_path, result_ttl_s=-1.0)
        with pytest.raises(ValueError, match="spool_cap_bytes"):
            make_engine(tmp_path, spool_cap_bytes=-1)

    def test_ttl_evicts_finished_result(self, tmp_path):
        clock = TickClock(step=0.0)
        with make_engine(tmp_path, clock=clock, result_ttl_s=10.0) as svc:
            svc.start(recover=False)
            ack = svc.submit(sino(0), spec())
            assert svc.wait([ack["job_id"]], timeout=60)
            job_id = ack["job_id"]
            # Within TTL the result is served normally.
            assert np.array_equal(svc.result(job_id), reference(sino(0)))
            clock.now += 30.0  # TTL passes
            svc._sweep_evictions()
            with pytest.raises(JobFailedError, match="evicted"):
                svc.result(job_id)
            status = svc.status(job_id)
            assert status["state"] == "done"  # history survives eviction
            assert status["evicted"]
            assert not (tmp_path / "spool" / "jobs" / job_id).exists()
            entries = svc.journal.replay()
            assert entries[job_id].meta.get("evicted") is True
            with obs.capture() as cap:
                svc.sync_obs()
            counters = {c.name: c.total for c in cap.counters.values()}
            assert counters[obs.SERVICE_EVICTIONS] == 1

    def test_spool_cap_evicts_oldest_first(self, tmp_path):
        from repro.service.engine import Job

        svc = make_engine(tmp_path, spool_cap_bytes=10**9)
        image = np.zeros((CHANNELS, CHANNELS))
        jobs = []
        for i, wall in enumerate([100.0, 200.0, 300.0]):
            job = Job(job_id=f"job{i}", spec=spec(), state="done",
                      accepted_wall=wall, terminal_wall=wall)
            svc.journal.save_input(job.job_id, sino(i), spec().to_dict())
            svc.journal.save_result(job.job_id, image, {"iterations": 6})
            job.payload_bytes = svc.journal.payload_bytes(job.job_id)
            svc._jobs[job.job_id] = job
            jobs.append(job)
        # A cap that holds exactly the two newest payloads: the oldest
        # (and only the oldest) must go.
        cap = jobs[1].payload_bytes + jobs[2].payload_bytes
        object.__setattr__(svc.config, "spool_cap_bytes", cap)
        svc._sweep_evictions()
        assert jobs[0].evicted
        assert not jobs[1].evicted and not jobs[2].evicted
        assert not (tmp_path / "spool" / "jobs" / "job0").exists()
        (tmp_path / "spool" / "jobs" / "job1" / "result.npz").stat()
        svc.close()

    def test_cap_zero_reclaims_all_terminal_payloads(self, tmp_path):
        with make_engine(tmp_path, spool_cap_bytes=0) as svc:
            svc.start(recover=False)
            acks = [svc.submit(sino(i), spec()) for i in range(2)]
            assert svc.wait(timeout=60)
            svc._sweep_evictions()
            for ack in acks:
                with pytest.raises(JobFailedError, match="evicted"):
                    svc.result(ack["job_id"])
            assert svc.stats()["spool_payload_bytes"] == 0
            assert svc.stats()["evicted_jobs"] == 2

    def test_eviction_survives_restart(self, tmp_path):
        clock = TickClock(step=0.0)
        with make_engine(tmp_path, clock=clock, result_ttl_s=5.0) as svc1:
            svc1.start(recover=False)
            ack = svc1.submit(sino(0), spec())
            assert svc1.wait([ack["job_id"]], timeout=60)
            clock.now += 10.0
            svc1._sweep_evictions()
        # A fresh engine (no eviction config) learns from the journal
        # that the payload is durably gone: 410, never a silent 404.
        with make_engine(tmp_path) as svc2:
            svc2.start(recover=True)
            status = svc2.status(ack["job_id"])
            assert status["state"] == "done"
            assert status["evicted"]
            with pytest.raises(JobFailedError, match="evicted"):
                svc2.result(ack["job_id"])

    def test_evicted_result_is_http_410(self, tmp_path):
        clock = TickClock(step=0.0)
        svc = make_engine(tmp_path, clock=clock, result_ttl_s=5.0)
        svc.start(recover=False)
        server = ServiceServer(("127.0.0.1", 0), svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.port}"
        try:
            client = ServiceClient(url)
            ack = client.submit(sino(0), {"iterations": 6})
            assert client.wait(ack["job_id"], timeout=60)["state"] == "done"
            clock.now += 30.0
            svc._sweep_evictions()
            with pytest.raises(Exception) as err:
                urllib.request.urlopen(f"{url}/v1/jobs/{ack['job_id']}/result")
            assert err.value.code == 410
        finally:
            server.shutdown()
            server.server_close()
            svc.stop(drain=False, timeout=10)
            svc.close()


# -- chaos ---------------------------------------------------------------


class TestChaos:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_no_acknowledged_job_lost_under_faults(self, tmp_path, seed):
        faults = ServiceFaultConfig(
            drop=0.2, delay=0.3, delay_s=0.001, crash=0.25, seed=seed
        )
        svc = make_engine(
            tmp_path,
            faults=faults,
            queue_limit=64,
            retry=RetryPolicy(max_retries=8, backoff_base=0.0),
        )
        submit_retry = RetryPolicy(max_retries=20, backoff_base=0.0)
        with svc:
            svc.start(recover=False)
            acks = []
            for i in range(8):
                attempt = 0
                while True:  # the client's drop-retry loop
                    try:
                        acks.append(svc.submit(sino(i), spec(tenant=f"t{i % 3}")))
                        break
                    except DroppedSubmissionError:
                        assert not submit_retry.exhausted(attempt)
                        attempt += 1
            assert svc.wait(timeout=120)
            # Zero acknowledged-job loss: every ack reached `done` with
            # a bit-exact result despite drops, delays, and crashes.
            for i, ack in enumerate(acks):
                assert svc.status(ack["job_id"])["state"] == "done"
                assert np.array_equal(svc.result(ack["job_id"]), reference(sino(i)))


# -- HTTP front end ------------------------------------------------------


@pytest.fixture()
def http_service(tmp_path):
    svc = make_engine(tmp_path, queue_limit=4)
    svc.start(recover=False)
    server = ServiceServer(("127.0.0.1", 0), svc)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield svc, server, f"http://127.0.0.1:{server.port}"
    finally:
        server.shutdown()
        server.server_close()
        svc.stop(drain=False, timeout=10)
        svc.close()


class TestHTTP:
    def test_submit_status_result_roundtrip(self, http_service):
        _svc, _server, url = http_service
        client = ServiceClient(url)
        ack = client.submit(sino(0), {"iterations": 6, "tenant": "http"})
        final = client.wait(ack["job_id"], timeout=60)
        assert final["state"] == "done"
        assert np.array_equal(client.result(ack["job_id"]), reference(sino(0)))
        stats = client.stats()
        assert stats["states"]["done"] >= 1
        assert stats["tenants"]["http"]["completed"] == 1

    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        svc = make_engine(tmp_path, queue_limit=1)  # scheduler NOT started
        server = ServiceServer(("127.0.0.1", 0), svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.port}"
        try:
            client = ServiceClient(url, obey_backpressure=False)
            client.submit(sino(0), {"iterations": 6})
            with pytest.raises(Exception) as err:
                client.submit(sino(1), {"iterations": 6})
            http_err = err.value
            assert getattr(http_err, "code", None) == 429
            assert "Retry-After" in http_err.headers
            assert int(http_err.headers["Retry-After"]) >= 1
        finally:
            server.shutdown()
            server.server_close()
            svc.close()

    def test_unknown_routes_and_jobs(self, http_service):
        _svc, _server, url = http_service
        for path in ("/nope", "/v1/jobs/does-not-exist",
                     "/v1/jobs/does-not-exist/result"):
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{url}{path}")
            assert err.value.code == 404

    def test_healthz(self, http_service):
        _svc, _server, url = http_service
        with urllib.request.urlopen(f"{url}/v1/healthz") as resp:
            assert json.loads(resp.read()) == {"ok": True}

    def test_client_retries_through_drops(self, tmp_path):
        svc = make_engine(
            tmp_path, faults=ServiceFaultConfig(drop=0.5, seed=7),
            queue_limit=64,
        )
        svc.start(recover=False)
        server = ServiceServer(("127.0.0.1", 0), svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.port}",
                retry=RetryPolicy(max_retries=30, backoff_base=0.0),
            )
            acks = [client.submit(sino(i), {"iterations": 6}) for i in range(4)]
            for i, ack in enumerate(acks):
                assert client.wait(ack["job_id"], timeout=60)["state"] == "done"
                assert np.array_equal(client.result(ack["job_id"]),
                                      reference(sino(i)))
        finally:
            server.shutdown()
            server.server_close()
            svc.stop(drain=False, timeout=10)
            svc.close()


# -- subprocess battery: kill -9 / SIGTERM over the real CLI -------------


def _serve_subprocess(spool, extra_args=()):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--spool", str(spool),
         "--port", "0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
    )
    line = proc.stdout.readline()
    if not line:
        proc.wait(timeout=10)
        raise RuntimeError(f"server died at startup (exit {proc.returncode})")
    return proc, json.loads(line)["port"]


@pytest.mark.slow
class TestSubprocess:
    def test_kill9_restart_completes_bit_exact(self, tmp_path):
        spool = tmp_path / "spool"
        proc, port = _serve_subprocess(spool)
        client = ServiceClient(f"http://127.0.0.1:{port}")
        sinos = [sino(i) for i in range(3)]
        try:
            acks = [
                client.submit(s, {"iterations": 25, "tenant": f"t{i}"})
                for i, s in enumerate(sinos)
            ]
            ckpt = client.submit(
                sinos[0], {"iterations": 40, "checkpoint_every": 5}
            )
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        proc2, port2 = _serve_subprocess(spool)
        client2 = ServiceClient(f"http://127.0.0.1:{port2}")
        try:
            for i, ack in enumerate(acks):
                final = client2.wait(ack["job_id"], timeout=120)
                assert final["state"] == "done", final
                assert np.array_equal(
                    client2.result(ack["job_id"]),
                    reference(sinos[i], iterations=25),
                )
            final = client2.wait(ckpt["job_id"], timeout=120)
            assert final["state"] == "done"
            assert np.array_equal(
                client2.result(ckpt["job_id"]),
                reference(sinos[0], iterations=40),
            )
        finally:
            os.kill(proc2.pid, signal.SIGKILL)
            proc2.wait(timeout=30)

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        spool = tmp_path / "spool"
        proc, port = _serve_subprocess(spool)
        client = ServiceClient(f"http://127.0.0.1:{port}")
        acks = [client.submit(sino(i), {"iterations": 10}) for i in range(2)]
        os.kill(proc.pid, signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
        # Drained: both jobs reached `done` in the journal before exit.
        journal = JobJournal(spool)
        entries = journal.replay()
        for ack in acks:
            assert entries[ack["job_id"]].state == "done"
        journal.close()

    def test_die_at_fault_then_restart(self, tmp_path):
        spool = tmp_path / "spool"
        # die_at=1: the server hard-exits (os._exit) at its first solve
        # dispatch — a deterministic kill -9 mid-job.
        proc, port = _serve_subprocess(spool, ("--faults", "die_at=1"))
        client = ServiceClient(f"http://127.0.0.1:{port}")
        ack = client.submit(sino(0), {"iterations": 10})
        assert proc.wait(timeout=60) == 137
        proc2, port2 = _serve_subprocess(spool)
        client2 = ServiceClient(f"http://127.0.0.1:{port2}")
        try:
            final = client2.wait(ack["job_id"], timeout=120)
            assert final["state"] == "done"
            assert final["recovered"]
            assert np.array_equal(
                client2.result(ack["job_id"]),
                reference(sino(0), iterations=10),
            )
        finally:
            os.kill(proc2.pid, signal.SIGKILL)
            proc2.wait(timeout=30)
