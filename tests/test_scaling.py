"""Tests for the scaling-experiment driver (paper Fig. 11 mechanics)."""

import pytest

from repro.dist import (
    model_preprocessing_time,
    model_solution_time,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.machine import get_machine


class TestModelSolutionTime:
    def test_kernel_breakdown_positive(self):
        pt = model_solution_time(1500, 1024, get_machine("theta"), 64)
        assert pt.ap_seconds > 0
        assert pt.comm_seconds > 0
        assert pt.reduction_seconds >= 0
        assert pt.total_seconds == pytest.approx(
            pt.ap_seconds + pt.comm_seconds + pt.reduction_seconds
        )

    def test_single_node_has_no_comm(self):
        pt = model_solution_time(750, 512, get_machine("theta"), 1)
        assert pt.comm_seconds == 0.0
        assert pt.reduction_seconds == 0.0

    def test_csr_slower_than_buffered(self):
        buffered = model_solution_time(1500, 1024, get_machine("theta"), 8)
        csr = model_solution_time(
            1500, 1024, get_machine("theta"), 8, optimization="csr", miss_rate=0.3
        )
        assert csr.ap_seconds > buffered.ap_seconds

    def test_unknown_optimization_rejected(self):
        with pytest.raises(ValueError):
            model_solution_time(100, 100, get_machine("theta"), 1, optimization="magic")

    def test_row_format(self):
        pt = model_solution_time(100, 128, get_machine("theta"), 2)
        row = pt.row()
        assert row[0] == 2 and row[1] == "100x128"


class TestWeakScaling:
    def test_ap_stays_flat(self):
        """Constant work per node: A_p must be near-constant across
        steps (Fig. 11(a)-(b))."""
        pts = weak_scaling_series(750, 512, get_machine("theta"), steps=4)
        ap = [p.ap_seconds for p in pts]
        assert max(ap) / min(ap) < 2.0

    def test_comm_grows_like_sqrt_p(self):
        pts = weak_scaling_series(750, 512, get_machine("theta"), steps=4)
        comm = [p.comm_seconds for p in pts[1:]]
        # Each step multiplies P by 8 while per-rank payload stays
        # ~M N / sqrt(P) x (MN grows 4x, sqrt(P) grows ~2.83) -> grows.
        assert all(b > a for a, b in zip(comm, comm[1:]))

    def test_node_progression(self):
        pts = weak_scaling_series(360, 256, get_machine("bluewaters"), steps=3)
        assert [p.num_nodes for p in pts] == [1, 8, 64]
        assert pts[-1].num_projections == 360 * 4


class TestStrongScaling:
    def test_ap_scales_down(self):
        pts = strong_scaling_series(
            4501, 11283, get_machine("theta"), [128, 256, 512, 1024, 2048, 4096]
        )
        ap = [p.ap_seconds for p in pts]
        assert all(b < a for a, b in zip(ap, ap[1:]))

    def test_superlinear_when_fitting_mcdram(self):
        """Paper Section 4.1.3: going 1 -> 8 nodes can speed A_p by
        more than 8x when the per-node working set drops into MCDRAM."""
        one = model_solution_time(1501, 2048, get_machine("theta"), 1)
        eight = model_solution_time(1501, 2048, get_machine("theta"), 8)
        assert one.ap_seconds / eight.ap_seconds > 8.0

    def test_communication_eventually_dominates(self):
        pts = strong_scaling_series(
            1501, 2048, get_machine("bluewaters"), [32, 128, 512, 2048, 4096]
        )
        first, last = pts[0], pts[-1]
        assert first.comm_seconds < first.ap_seconds
        assert last.comm_seconds > last.ap_seconds


class TestPreprocessing:
    def test_amdahl_speedup(self):
        t1 = model_preprocessing_time(1501, 2048, 1)
        t8 = model_preprocessing_time(1501, 2048, 8)
        t4096 = model_preprocessing_time(1501, 2048, 4096)
        assert 6.0 < t1 / t8 <= 8.0
        assert t1 / t4096 < 4096  # serial fraction caps the speedup

    def test_magnitude_matches_table5(self):
        """Single-point calibration check: RDS1 on 1 node ~ 139 s."""
        t1 = model_preprocessing_time(1501, 2048, 1)
        assert 100 < t1 < 180


class TestCommunicationModelTerms:
    def test_posting_term_grows_with_ranks(self):
        """Table 1's '+P' term: at fixed per-rank payload, the
        Alltoallv posting cost makes C grow with rank count."""
        from repro.dist import model_solution_time
        from repro.machine import get_machine

        theta = get_machine("theta")
        # Weak-ish comparison: same per-rank work by scaling M with P.
        c_small = model_solution_time(1000, 1024, theta, 64).comm_seconds
        c_large = model_solution_time(8000, 1024, theta, 4096).comm_seconds
        assert c_large > c_small

    def test_overlap_constant_scales_volume(self):
        from repro.dist import model_solution_time
        from repro.machine import get_machine

        theta = get_machine("theta")
        lo = model_solution_time(1500, 1024, theta, 64, overlap_constant=0.5)
        hi = model_solution_time(1500, 1024, theta, 64, overlap_constant=2.0)
        assert hi.comm_seconds > lo.comm_seconds
        assert hi.ap_seconds == lo.ap_seconds

    def test_handshake_constant_affects_latency_term(self):
        from repro.dist import model_solution_time
        from repro.machine import get_machine

        theta = get_machine("theta")
        few = model_solution_time(1500, 1024, theta, 256, handshake_constant=1.0)
        many = model_solution_time(1500, 1024, theta, 256, handshake_constant=8.0)
        assert many.comm_seconds > few.comm_seconds
