"""Tests for the cache simulator and the Fig. 5 worked example."""

import numpy as np
import pytest

from repro.cachesim import (
    Cache,
    CacheStats,
    cold_misses_for_footprint,
    irregular_trace_buffered,
    irregular_trace_csr,
    miss_rate_buffered,
    miss_rate_csr,
    sample_rows,
)
from repro.geometry import ParallelBeamGeometry
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix, build_buffered
from repro.trace import build_projection_matrix


class TestCacheModel:
    def test_cold_misses(self):
        c = Cache(capacity_bytes=1024, line_bytes=64, ways=4)
        stats = c.run(np.arange(0, 640, 64))
        assert stats.misses == 10 and stats.accesses == 10

    def test_line_granularity_hits(self):
        c = Cache(capacity_bytes=1024, line_bytes=64, ways=4)
        stats = c.run(np.array([0, 4, 8, 63, 64]))
        assert stats.misses == 2  # line 0 then line 1

    def test_lru_eviction_order(self):
        # 4-line fully-associative cache (1 set x 4 ways).
        c = Cache(capacity_bytes=256, line_bytes=64, ways=4)
        lines = np.array([0, 1, 2, 3]) * 64
        c.run(lines)
        c.run(np.array([0]))  # touch line 0 -> MRU
        c.run(np.array([4 * 64]))  # evicts LRU = line 1
        s = c.run(np.array([0]))
        assert s.misses == 0  # line 0 survived
        s = c.run(np.array([64]))
        assert s.misses == 1  # line 1 was evicted

    def test_set_conflicts(self):
        # 2 sets x 1 way: lines 0 and 2 conflict, 0 and 1 do not.
        c = Cache(capacity_bytes=128, line_bytes=64, ways=1)
        s = c.run(np.array([0, 64, 0, 64]))
        assert s.misses == 2
        c.reset()
        s = c.run(np.array([0, 128, 0, 128]))
        assert s.misses == 4

    def test_reset(self):
        c = Cache(256, 64, 2)
        c.run(np.array([0, 64]))
        c.reset()
        assert c.stats.accesses == 0
        assert c.touched_lines() == 0

    def test_access_single(self):
        c = Cache(256, 64, 2)
        assert c.access(0) is True
        assert c.access(32) is False

    def test_stats_merge_and_rate(self):
        s = CacheStats(10, 4).merged(CacheStats(10, 1))
        assert s.accesses == 20 and s.misses == 5
        assert s.miss_rate == 0.25
        assert s.hits == 15
        assert CacheStats().miss_rate == 0.0

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            Cache(capacity_bytes=100, line_bytes=60, ways=1)  # non-pow2 line
        with pytest.raises(ValueError):
            Cache(capacity_bytes=32, line_bytes=64, ways=1)  # too small
        with pytest.raises(ValueError):
            Cache(capacity_bytes=256, line_bytes=64, ways=8)  # ways > lines


class TestFig5WorkedExample:
    """Paper Fig. 5: 16x16 domains, 64 B lines (16 floats).

    Row-major ordering -> each row is one line -> a diagonal ray's ~30
    tomogram accesses hit 16 lines (53 % misses); Hilbert -> lines are
    4x4 blocks -> ~7 misses (23 %)."""

    @pytest.fixture(scope="class")
    def diagonal_ray_cols(self):
        g = ParallelBeamGeometry(25, 16)
        A = CSRMatrix.from_scipy(build_projection_matrix(g))
        row = int(g.ray_index(25 // 4, 8))  # ~45 degrees, central channel
        return A.ind[A.displ[row] : A.displ[row + 1]].astype(np.int64)

    def test_access_count_near_paper(self, diagonal_ray_cols):
        assert 28 <= diagonal_ray_cols.shape[0] <= 31  # paper: 30

    def test_row_major_misses(self, diagonal_ray_cols):
        rm = make_ordering("row-major", 16, 16)
        misses, accesses = cold_misses_for_footprint(diagonal_ray_cols, rm)
        assert misses == 16  # paper: 16 misses
        assert misses / accesses > 0.5  # paper: 53 %

    def test_hilbert_misses(self, diagonal_ray_cols):
        hb = make_ordering("hilbert", 16, 16)
        misses, accesses = cold_misses_for_footprint(diagonal_ray_cols, hb)
        assert misses <= 8  # paper: 7 misses
        assert misses / accesses < 0.3  # paper: 23 %

    def test_sinusoid_footprint(self):
        """The sinogram-side footprint of one pixel: one access per
        angle (paper's 25 accesses), 16 row-major misses vs ~6 Hilbert."""
        g = ParallelBeamGeometry(25, 16)
        A = CSRMatrix.from_scipy(build_projection_matrix(g))
        from repro.sparse import scan_transpose

        AT = scan_transpose(A)
        pixel = 8 * 16 + 4
        rows = AT.ind[AT.displ[pixel] : AT.displ[pixel + 1]].astype(np.int64)
        # One or two adjacent channels cross the pixel per angle.
        assert 25 <= rows.shape[0] <= 2 * 25
        rm = make_ordering("row-major", 25, 16)
        hb = make_ordering("hilbert", 25, 16)
        m_rm, _ = cold_misses_for_footprint(rows, rm)
        m_hb, _ = cold_misses_for_footprint(rows, hb)
        assert m_hb < m_rm


class TestMissRates:
    @pytest.fixture(scope="class")
    def matrices(self):
        g = ParallelBeamGeometry(60, 48)
        A = CSRMatrix.from_scipy(build_projection_matrix(g))
        tomo = make_ordering("pseudo-hilbert", 48, 48, min_tiles=16)
        sino = make_ordering("pseudo-hilbert", 60, 48, min_tiles=16)
        Ah = A.permute(sino.perm, tomo.rank).sort_rows_by_index()
        return A, Ah

    def test_hilbert_reduces_l2_misses(self, matrices):
        A, Ah = matrices
        cap = 1024
        base = miss_rate_csr(A, cap)
        hilb = miss_rate_csr(Ah, cap)
        assert hilb.miss_rate < 0.6 * base.miss_rate

    def test_buffered_staging_is_near_compulsory(self, matrices):
        _, Ah = matrices
        B = build_buffered(Ah, partition_size=64, buffer_bytes=1024)
        stats = miss_rate_buffered(B, capacity_bytes=1024)
        # The map stream is distinct, sorted per partition: touching a
        # line's elements consecutively, so the rate is close to
        # (elements per line)^-1 = 1/16 plus cross-partition re-reads.
        assert stats.miss_rate < 0.5

    def test_max_accesses_truncation(self, matrices):
        A, _ = matrices
        stats = miss_rate_csr(A, 4096, max_accesses=500)
        assert stats.accesses == 500

    def test_traces(self, matrices):
        A, Ah = matrices
        t = irregular_trace_csr(A)
        assert t.shape[0] == A.nnz
        assert (t % 4 == 0).all()
        B = build_buffered(Ah, 64, 1024)
        tb = irregular_trace_buffered(B)
        assert tb.shape[0] == B.map.shape[0]

    def test_sample_rows(self, matrices):
        A, _ = matrices
        sub = sample_rows(A, 10, seed=1)
        assert sub.num_rows == 10
        full = sample_rows(A, 10**9)
        assert full.num_rows == A.num_rows


class TestInterferenceTrace:
    def test_combined_trace_structure(self):
        import scipy.sparse as sp
        from repro.cachesim import combined_trace_csr

        S = sp.random(20, 30, density=0.2, random_state=np.random.default_rng(0),
                      format="csr", dtype=np.float32)
        A = CSRMatrix.from_scipy(S)
        trace, is_gather = combined_trace_csr(A)
        assert trace.shape[0] == 2 * A.nnz
        assert is_gather.sum() == A.nnz
        # gathers live in the low region, streams far above
        assert trace[is_gather].max() < (1 << 39)
        assert trace[~is_gather].min() >= (1 << 40)

    def test_run_counting_counts_masked_only(self):
        c = Cache(256, 64, 4)
        addrs = np.array([0, 64, 0, 64])
        mask = np.array([True, False, True, False])
        stats = c.run_counting(addrs, mask)
        assert stats.accesses == 2
        assert stats.misses == 1  # first access misses, third hits

    def test_run_counting_shape_validation(self):
        c = Cache(256, 64, 4)
        with pytest.raises(ValueError):
            c.run_counting(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=bool))

    def test_interference_raises_miss_rate(self):
        """Streaming ind/val traffic must evict gathered lines: the
        interference-aware rate is at least the isolated rate."""
        g = ParallelBeamGeometry(40, 32)
        A = CSRMatrix.from_scipy(build_projection_matrix(g))
        isolated = miss_rate_csr(A, 8192).miss_rate
        interfered = miss_rate_csr(A, 8192, include_regular=True).miss_rate
        assert interfered >= isolated

    def test_hilbert_still_wins_under_interference(self):
        g = ParallelBeamGeometry(60, 48)
        A = CSRMatrix.from_scipy(build_projection_matrix(g))
        tomo = make_ordering("pseudo-hilbert", 48, 48, min_tiles=16)
        sino = make_ordering("pseudo-hilbert", 60, 48, min_tiles=16)
        Ah = A.permute(sino.perm, tomo.rank).sort_rows_by_index()
        base = miss_rate_csr(A, 4096, include_regular=True).miss_rate
        hilb = miss_rate_csr(Ah, 4096, include_regular=True).miss_rate
        assert hilb < base
