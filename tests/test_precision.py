"""Tolerance contract of the opt-in float32 compute path.

Every bound asserted here is documented in docs/autotuning.md; this
file IS the contract.  Measured headroom (32x32 demo geometry) is
roughly 10x below each bound:

* forward/adjoint SpMV: fp32 vs fp64 relative error < 1e-6 (all three
  layouts, batched, and 2-worker parallel);
* adjointness holds in fp32: <Ax, y> == <x, A^T y> to 1e-5;
* SIRT/MLEM iterates: < 1e-4 after 15 iterations;
* CG iterates: < 5e-2 after 15 iterations (Krylov directions are
  precision-sensitive), while the achieved residual *reduction* stays
  within 25% of the fp64 run — fp32 converges equally well, along a
  slightly different path.

Also pins the dtype plumbing itself: fp32/fp64 plan fingerprints never
collide, persistence round-trips float64 values, and the upcast fixes
(solver ``_safe_reciprocal``, ``normalize_counts``) stay
dtype-preserving.
"""

import numpy as np
import pytest

from repro.cache import plan_fingerprint
from repro.core import MemXCTOperator, OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.measurement import normalize_counts, simulate_counts
from repro.phantoms import shepp_logan
from repro.precision import compute_dtype, parse_dtype, solver_dtype
from repro.solvers import cgls, cgls_batch, mlem, mlem_batch, sirt, sirt_batch

N = 32
KERNELS = ("csr", "buffered", "ell")


@pytest.fixture(scope="module")
def geometry():
    return ParallelBeamGeometry(N, N)


@pytest.fixture(scope="module")
def operators(geometry):
    """{(dtype, kernel): operator} for both precisions, all layouts."""
    return {
        (d, k): preprocess(geometry, OperatorConfig(kernel=k, dtype=d))[0]
        for d in ("float32", "float64")
        for k in KERNELS
    }


@pytest.fixture(scope="module")
def problem(operators):
    """A smooth, well-conditioned phantom problem in both precisions."""
    op64 = operators[("float64", "csr")]
    x64 = op64.image_to_ordered(shepp_logan(N))
    y64 = op64.forward(x64)
    return {"x64": x64, "y64": y64}


def _rel(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(np.linalg.norm(a - b) / np.linalg.norm(b))


class TestParseDtype:
    @pytest.mark.parametrize("spec,expected", [
        (None, None),
        ("float32", "float32"), ("fp32", "float32"), ("single", "float32"),
        ("f32", "float32"), ("FLOAT32", "float32"),
        ("float64", "float64"), ("fp64", "float64"), ("double", "float64"),
        ("f64", "float64"),
        (np.float32, "float32"), (np.dtype(np.float64), "float64"),
    ])
    def test_accepted_spellings(self, spec, expected):
        assert parse_dtype(spec) == expected

    @pytest.mark.parametrize("bad", [
        "float16", "int32", "quad", "", "float", 32, 64.0, object(),
    ])
    def test_rejections_name_accepted_spellings(self, bad):
        with pytest.raises((ValueError, TypeError), match="dtype"):
            parse_dtype(bad)

    def test_compute_and_solver_dtype(self):
        assert compute_dtype(None) == np.float32
        assert compute_dtype("float32") == np.float32
        assert compute_dtype("float64") == np.float64

        class _Op:
            solve_dtype = np.float32

        assert solver_dtype(_Op()) == np.float32
        assert solver_dtype(object()) == np.float64  # legacy operators


class TestOperatorConfigValidation:
    @pytest.mark.parametrize("bad", ["float16", "int8", "halfish", 16])
    def test_bad_dtype_rejected(self, bad):
        with pytest.raises((ValueError, TypeError), match="dtype"):
            OperatorConfig(dtype=bad)

    @pytest.mark.parametrize("bad", ["yes", "exhaustive", "", 1, True])
    def test_bad_tune_rejected(self, bad):
        with pytest.raises((ValueError, TypeError), match="tune"):
            OperatorConfig(tune=bad)

    def test_tune_normalized_lowercase(self):
        assert OperatorConfig(tune="AUTO").tune == "auto"

    def test_dtype_properties(self, operators):
        op32 = operators[("float32", "csr")]
        op64 = operators[("float64", "csr")]
        assert op32.compute_dtype == np.float32 and op32.solve_dtype == np.float32
        assert op64.compute_dtype == np.float64 and op64.solve_dtype == np.float64
        assert op32.matrix.val.dtype == np.float32
        assert op64.matrix.val.dtype == np.float64


class TestFingerprints:
    def test_fp32_fp64_and_default_plans_never_collide(self, geometry):
        """Regression: dtype is part of the plan-cache key."""
        keys = {
            d: plan_fingerprint(geometry, OperatorConfig(dtype=d))
            for d in (None, "float32", "float64")
        }
        assert len(set(keys.values())) == 3

    def test_default_fingerprint_unchanged_by_dtype_feature(self, geometry):
        """dtype=None must hash exactly like pre-dtype caches did."""
        from repro.cache.fingerprint import fingerprint_inputs

        doc = fingerprint_inputs(geometry, OperatorConfig())
        assert "dtype" not in doc["config"]


class TestSpmvContract:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_forward_adjoint_error_bound(self, operators, problem, kernel):
        op32 = operators[("float32", kernel)]
        op64 = operators[("float64", kernel)]
        f32 = op32.forward(problem["x64"].astype(np.float32))
        f64 = op64.forward(problem["x64"])
        assert f32.dtype == np.float32
        assert _rel(f32, f64) < 1e-6
        a32 = op32.adjoint(problem["y64"].astype(np.float32))
        a64 = op64.adjoint(problem["y64"])
        assert _rel(a32, a64) < 1e-6

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_batched_spmv_error_bound(self, operators, problem, kernel):
        op32 = operators[("float32", kernel)]
        op64 = operators[("float64", kernel)]
        X = np.stack([problem["x64"], 2.0 * problem["x64"]], axis=1)
        F32 = op32.forward_batch(X.astype(np.float32))
        F64 = op64.forward_batch(X)
        assert F32.dtype == np.float32
        assert _rel(F32, F64) < 1e-6

    def test_parallel_two_workers_bitwise_matches_serial_fp32(
        self, operators, problem
    ):
        op32 = operators[("float32", "buffered")]
        x32 = problem["x64"].astype(np.float32)
        y32 = problem["y64"].astype(np.float32)
        serial_f = op32.forward(x32)
        serial_a = op32.adjoint(y32)
        op32.set_workers("thread:2")
        try:
            assert np.array_equal(op32.forward(x32), serial_f)
            assert np.array_equal(op32.adjoint(y32), serial_a)
        finally:
            op32.set_workers(None)
            op32.close()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fp32_adjointness(self, operators, kernel):
        """<A x, y> == <x, A^T y> holds inside the fp32 path."""
        op32 = operators[("float32", kernel)]
        rng = np.random.default_rng(3)
        x = rng.standard_normal(op32.num_pixels).astype(np.float32)
        y = rng.standard_normal(op32.num_rays).astype(np.float32)
        lhs = float(op32.forward(x).astype(np.float64) @ y)
        rhs = float(x.astype(np.float64) @ op32.adjoint(y))
        assert lhs == pytest.approx(rhs, rel=1e-5)


class TestSolverContract:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_cg_iterate_and_convergence_bounds(self, operators, problem, kernel):
        op32 = operators[("float32", kernel)]
        op64 = operators[("float64", kernel)]
        r32 = cgls(op32, problem["y64"].astype(np.float32), num_iterations=15)
        r64 = cgls(op64, problem["y64"], num_iterations=15)
        assert r32.x.dtype == np.float32
        assert _rel(r32.x, r64.x) < 5e-2
        # fp32 CG walks a slightly different Krylov path but converges
        # equally well: achieved residual reduction within 25% of fp64.
        red32 = r32.residual_norms[-1] / r32.residual_norms[0]
        red64 = r64.residual_norms[-1] / r64.residual_norms[0]
        assert red32 < 1.25 * red64

    def test_sirt_iterate_bound(self, operators, problem):
        op32 = operators[("float32", "csr")]
        op64 = operators[("float64", "csr")]
        r32 = sirt(op32, problem["y64"].astype(np.float32), num_iterations=15)
        r64 = sirt(op64, problem["y64"], num_iterations=15)
        assert r32.x.dtype == np.float32
        assert _rel(r32.x, r64.x) < 1e-4

    def test_mlem_iterate_bound(self, operators, problem):
        op32 = operators[("float32", "csr")]
        op64 = operators[("float64", "csr")]
        y = np.maximum(problem["y64"], 0.0)
        r32 = mlem(op32, y.astype(np.float32), num_iterations=15)
        r64 = mlem(op64, y, num_iterations=15)
        assert r32.x.dtype == np.float32
        assert _rel(r32.x, r64.x) < 1e-4

    @pytest.mark.parametrize("single,batched", [
        (cgls, cgls_batch), (sirt, sirt_batch),
    ])
    def test_batched_fp32_bit_exact_vs_single_slice(
        self, operators, problem, single, batched
    ):
        """The multi-RHS solvers reproduce single-slice fp32 exactly."""
        op32 = operators[("float32", "csr")]
        y32 = problem["y64"].astype(np.float32)
        Y = np.stack([y32, (0.5 * y32).astype(np.float32)], axis=1)
        res_b = batched(op32, Y, num_iterations=8)
        assert res_b.X.dtype == np.float32
        for j in range(2):
            res_s = single(op32, np.ascontiguousarray(Y[:, j]), num_iterations=8)
            assert np.array_equal(res_b.X[:, j], res_s.x)

    def test_mlem_batched_fp32_bit_exact(self, operators, problem):
        op32 = operators[("float32", "csr")]
        y32 = np.maximum(problem["y64"], 0.0).astype(np.float32)
        Y = np.stack([y32, y32 * np.float32(2.0)], axis=1)
        res_b = mlem_batch(op32, Y, num_iterations=8)
        for j in range(2):
            res_s = mlem(op32, np.ascontiguousarray(Y[:, j]), num_iterations=8)
            assert np.array_equal(res_b.X[:, j], res_s.x)

    def test_legacy_default_path_still_solves_in_float64(self, geometry):
        op, _ = preprocess(geometry, OperatorConfig())
        y = np.ones(op.num_rays)
        res = cgls(op, y, num_iterations=3)
        assert res.x.dtype == np.float64
        assert op.matrix.val.dtype == np.float32  # mixed precision intact


class TestUpcastPinning:
    """Each fix for a silent float64 upcast, pinned."""

    def test_sirt_safe_reciprocal_preserves_float32(self):
        from repro.solvers.sirt import _safe_reciprocal

        out = _safe_reciprocal(np.array([2.0, 0.0, 4.0], dtype=np.float32))
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, [0.5, 0.0, 0.25])

    def test_batched_safe_reciprocal_preserves_float32(self):
        from repro.solvers.batched import _safe_reciprocal

        out = _safe_reciprocal(np.array([[2.0], [0.0]], dtype=np.float32))
        assert out.dtype == np.float32

    def test_normalize_counts_preserves_float32(self):
        sino = np.full((4, 8), 0.7, dtype=np.float32)
        frames = simulate_counts(sino, seed=1)
        out = normalize_counts(
            frames["counts"].astype(np.float32),
            frames["flat"].astype(np.float32),
            frames["dark"].astype(np.float32),
            attenuation_scale=float(frames["attenuation_scale"]),
        )
        assert out.dtype == np.float32

    def test_normalize_counts_integer_frames_promote_to_float64(self):
        counts = np.array([[900, 800]], dtype=np.int64)
        flat = np.array([[1000, 1000]], dtype=np.int64)
        dark = np.array([[10, 10]], dtype=np.int64)
        assert normalize_counts(counts, flat, dark).dtype == np.float64

    def test_normalize_counts_explicit_dtype_wins(self):
        counts = np.array([[900.0]])
        flat = np.array([[1000.0]])
        dark = np.array([[10.0]])
        out = normalize_counts(counts, flat, dark, dtype="float32")
        assert out.dtype == np.float32

    def test_parallel_rebuild_preserves_float64_values(self):
        from repro.parallel.spmv import _flatten_layout, _rebuild_layout
        from repro.sparse import CSRMatrix

        A = CSRMatrix(
            displ=np.array([0, 1, 2]), ind=np.array([0, 1]),
            val=np.array([1.5, 2.5]), num_cols=2, value_dtype="float64",
        )
        kind, arrays, meta = _flatten_layout(A)
        rebuilt = _rebuild_layout(kind, arrays, meta)
        assert rebuilt.val.dtype == np.float64

    def test_pipeline_rhs_matches_solver_dtype(self, geometry):
        from repro.pipeline import reconstruct_stack

        op32, _ = preprocess(geometry, OperatorConfig(dtype="float32"))
        stack = np.random.default_rng(0).random((2, N, N))
        res = reconstruct_stack(stack, geometry, operator=op32, iterations=3)
        assert res.volume.dtype == np.float64  # assembled volume stays f64


class TestPersistenceRoundTrip:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fp64_operator_survives_save_load(self, tmp_path, geometry, kernel):
        from repro.io import load_operator, save_operator

        op, _ = preprocess(geometry, OperatorConfig(kernel=kernel, dtype="float64"))
        path = save_operator(tmp_path / "op64.npz", op)
        loaded = load_operator(path)
        assert isinstance(loaded, MemXCTOperator)
        assert loaded.config.dtype == "float64"
        assert loaded.matrix.val.dtype == np.float64
        assert loaded.transpose.val.dtype == np.float64
        if kernel == "buffered":
            assert loaded.buffered_forward.val.dtype == np.float64
        if kernel == "ell":
            assert loaded.ell_forward.val_slabs[0].dtype == np.float64
        x = np.random.default_rng(0).random(op.num_pixels)
        assert np.array_equal(loaded.forward(x), op.forward(x))

    def test_legacy_file_without_dtype_key_loads_as_default(self, tmp_path, geometry):
        from repro.io import load_operator, save_operator

        op, _ = preprocess(geometry, OperatorConfig())
        path = save_operator(tmp_path / "op.npz", op)
        loaded = load_operator(path)
        assert loaded.config.dtype is None
        assert loaded.matrix.val.dtype == np.float32
