"""Differential kernel tests: every layout against the CSR baseline.

The buffered and ELL layouts are *re-layouts* of the same matrix — in
float64 their forward/adjoint products must match the CSR kernel to
``rtol=1e-12`` (the only permitted difference is floating-point
reassociation across buffer stages).  Randomized traced geometries are
seeded; degenerate shapes (empty rows, single-row partitions, a buffer
smaller than one partition's working set) get explicit cases.
"""

import numpy as np
import pytest

from repro.geometry import ParallelBeamGeometry
from repro.sparse import (
    CSRMatrix,
    build_buffered,
    build_ell,
    scan_transpose,
)
from repro.trace import build_projection_matrix

TOL = dict(rtol=1e-12, atol=1e-12)


def _random_geometry_matrix(seed: int) -> CSRMatrix:
    """Trace a randomized small parallel-beam scan (seeded)."""
    rng = np.random.default_rng(seed)
    angles = int(rng.integers(6, 30))
    channels = int(rng.integers(9, 25))
    raw = build_projection_matrix(ParallelBeamGeometry(angles, channels))
    return CSRMatrix.from_scipy(raw).sort_rows_by_index()


def _apply_buffered(A, x, partition_size, buffer_bytes):
    return build_buffered(A, partition_size, buffer_bytes).spmv_vectorized(x)


def _apply_ell(A, x, partition_size):
    return build_ell(A, partition_size).spmv(x)


class TestRandomizedGeometries:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("kernel", ["buffered", "ell"])
    def test_forward_matches_csr(self, seed, kernel):
        A = _random_geometry_matrix(seed)
        x = np.random.default_rng(seed + 100).standard_normal(A.num_cols)
        ref = A.spmv(x)
        if kernel == "buffered":
            out = _apply_buffered(A, x, partition_size=16, buffer_bytes=256)
        else:
            out = _apply_ell(A, x, partition_size=16)
        np.testing.assert_allclose(out, ref, **TOL)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("kernel", ["buffered", "ell"])
    def test_adjoint_matches_csr(self, seed, kernel):
        AT = scan_transpose(_random_geometry_matrix(seed))
        y = np.random.default_rng(seed + 200).standard_normal(AT.num_cols)
        ref = AT.spmv(y)
        if kernel == "buffered":
            out = _apply_buffered(AT, y, partition_size=16, buffer_bytes=256)
        else:
            out = _apply_ell(AT, y, partition_size=16)
        np.testing.assert_allclose(out, ref, **TOL)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_buffered_loop_and_vectorized_agree(self, seed):
        """Listing-3 literal loops vs the whole-array evaluation."""
        A = _random_geometry_matrix(seed)
        buf = build_buffered(A, partition_size=8, buffer_bytes=128)
        x = np.random.default_rng(seed + 300).standard_normal(A.num_cols)
        np.testing.assert_allclose(buf.spmv(x), buf.spmv_vectorized(x), **TOL)


class TestDegenerateShapes:
    def _matrix_with_empty_rows(self) -> CSRMatrix:
        """Rows 0, 3, and the last two rows have no nonzeros."""
        import scipy.sparse as sp

        dense = np.zeros((9, 7), dtype=np.float32)
        rng = np.random.default_rng(7)
        for row in (1, 2, 4, 5, 6):
            cols = rng.choice(7, size=3, replace=False)
            dense[row, cols] = rng.random(3).astype(np.float32)
        return CSRMatrix.from_scipy(sp.csr_matrix(dense))

    @pytest.mark.parametrize("kernel", ["buffered", "ell"])
    def test_empty_rows(self, kernel):
        A = self._matrix_with_empty_rows()
        x = np.random.default_rng(1).standard_normal(A.num_cols)
        ref = A.spmv(x)
        if kernel == "buffered":
            out = _apply_buffered(A, x, partition_size=4, buffer_bytes=16)
        else:
            out = _apply_ell(A, x, partition_size=4)
        np.testing.assert_allclose(out, ref, **TOL)
        # Empty rows produce exact zeros in every layout.
        assert out[0] == 0.0 and out[3] == 0.0 and out[-1] == 0.0

    @pytest.mark.parametrize("kernel", ["buffered", "ell"])
    def test_single_row_partitions(self, kernel):
        """partition_size=1: one partition per row, ragged everywhere."""
        A = _random_geometry_matrix(5)
        x = np.random.default_rng(6).standard_normal(A.num_cols)
        ref = A.spmv(x)
        if kernel == "buffered":
            out = _apply_buffered(A, x, partition_size=1, buffer_bytes=64)
        else:
            out = _apply_ell(A, x, partition_size=1)
        np.testing.assert_allclose(out, ref, **TOL)

    def test_buffer_smaller_than_partition_working_set(self):
        """A one-element buffer forces one stage per distinct input."""
        A = _random_geometry_matrix(8)
        buf = build_buffered(A, partition_size=32, buffer_bytes=4)
        assert buf.buffer_elements == 1
        # Every partition needs as many stages as distinct inputs.
        assert buf.num_stages >= A.num_rows / 32
        x = np.random.default_rng(9).standard_normal(A.num_cols)
        np.testing.assert_allclose(buf.spmv_vectorized(x), A.spmv(x), **TOL)
        np.testing.assert_allclose(buf.spmv(x), A.spmv(x), **TOL)

    def test_partition_larger_than_matrix(self):
        """A single partition spanning all rows (padded slots unused)."""
        A = _random_geometry_matrix(4)
        x = np.random.default_rng(10).standard_normal(A.num_cols)
        ref = A.spmv(x)
        np.testing.assert_allclose(
            _apply_buffered(A, x, partition_size=4 * A.num_rows, buffer_bytes=65536),
            ref,
            **TOL,
        )
        np.testing.assert_allclose(
            _apply_ell(A, x, partition_size=4 * A.num_rows), ref, **TOL
        )
