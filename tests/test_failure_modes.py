"""Failure-injection tests: corrupted inputs, degenerate problems,
and pathological data must fail loudly or degrade gracefully."""

import numpy as np
import pytest

from repro.core import OperatorConfig, preprocess, reconstruct
from repro.geometry import Grid2D, ParallelBeamGeometry
from repro.ordering import make_ordering
from repro.solvers import cgls, sirt
from repro.sparse import CSRMatrix, build_buffered


class TestDegenerateProblems:
    def test_single_angle_scan(self):
        """One projection: wildly underdetermined but must not crash."""
        g = ParallelBeamGeometry(1, 16)
        op, _ = preprocess(g)
        y = np.ones(op.num_rays)
        res = cgls(op, op.sinogram_to_ordered(y.reshape(1, 16)), num_iterations=5)
        assert np.isfinite(res.x).all()

    def test_tiny_grid(self):
        g = ParallelBeamGeometry(4, 4)
        op, _ = preprocess(g)
        assert op.matrix.nnz > 0
        assert np.isfinite(op.forward(np.ones(16, dtype=np.float32))).all()

    def test_detector_wider_than_grid(self):
        """Edge channels miss the grid entirely -> empty matrix rows."""
        g = ParallelBeamGeometry(8, 24, grid=Grid2D(8))
        op, _ = preprocess(g)
        row_nnz = op.matrix.row_nnz()
        assert (row_nnz == 0).any()
        # Empty rows must not break any solver.
        res = sirt(op, np.ones(op.num_rays), num_iterations=3)
        assert np.isfinite(res.x).all()

    def test_all_zero_sinogram(self):
        g = ParallelBeamGeometry(10, 8)
        op, _ = preprocess(g)
        res = reconstruct(np.zeros((10, 8)), g, iterations=5, operator=op)
        np.testing.assert_allclose(res.image, 0.0)


class TestPathologicalData:
    def test_nan_sinogram_propagates_not_crashes(self):
        g = ParallelBeamGeometry(10, 8)
        op, _ = preprocess(g)
        sino = np.zeros((10, 8))
        sino[0, 0] = np.nan
        res = reconstruct(sino, g, iterations=2, operator=op)
        assert np.isnan(res.image).any()  # garbage in, visible garbage out

    def test_huge_dynamic_range(self):
        g = ParallelBeamGeometry(20, 16)
        op, _ = preprocess(g)
        img = np.zeros((16, 16))
        img[8, 8] = 1e8
        sino = op.project_image(img)
        res = reconstruct(sino, g, iterations=20, operator=op)
        assert np.isfinite(res.image).all()
        peak = np.unravel_index(np.argmax(res.image), res.image.shape)
        assert abs(peak[0] - 8) <= 1 and abs(peak[1] - 8) <= 1

    def test_negative_sinogram_values(self):
        """Normalization glitches produce small negatives; solvers must
        cope (CG is sign-agnostic, SIRT with clamping stays feasible)."""
        g = ParallelBeamGeometry(16, 12)
        op, _ = preprocess(g)
        sino = op.project_image(np.abs(np.random.default_rng(0).random((12, 12))))
        sino -= 0.1 * sino.max()
        res = reconstruct(sino, g, solver="sirt", iterations=10, operator=op,
                          nonnegativity=True)
        assert (res.image >= 0).all()


class TestCorruptedStructures:
    def test_unsorted_rows_rejected_implicitly_by_buffering(self):
        """build_buffered does not require sorted rows, but the staged
        kernel must still be numerically correct on unsorted input."""
        import scipy.sparse as sp

        rng = np.random.default_rng(0)
        S = sp.random(30, 40, density=0.3, random_state=rng, format="csr",
                      dtype=np.float32)
        A = CSRMatrix.from_scipy(S)  # scipy sorts; shuffle columns to unsort
        perm = rng.permutation(40)
        rank = np.empty(40, dtype=np.int64)
        rank[perm] = np.arange(40)
        shuffled = A.permute(None, rank)  # rows now unsorted by index
        B = build_buffered(shuffled, 8, 64)
        x = rng.random(40).astype(np.float32)
        np.testing.assert_allclose(B.spmv_vectorized(x), shuffled.spmv(x), atol=1e-4)

    def test_mismatched_ordering_dimensions(self):
        o = make_ordering("pseudo-hilbert", 8, 8)
        with pytest.raises(ValueError):
            o.to_ordered(np.zeros((8, 9)))

    def test_operator_config_immutable_kernel_check(self):
        with pytest.raises(ValueError):
            OperatorConfig(kernel="csc")

    def test_reconstruct_volume_shape_mismatch(self):
        from repro.core import reconstruct_volume

        g = ParallelBeamGeometry(10, 8)
        op, _ = preprocess(g)
        with pytest.raises(ValueError):
            reconstruct_volume(np.zeros((2, 10, 9)), op)


class TestNumericalStability:
    def test_cgls_on_rank_deficient_system(self):
        """Duplicate rows make A^T A singular; CGLS must still converge
        to *a* least-squares solution without blowing up."""
        import scipy.sparse as sp

        dense = np.random.default_rng(1).random((10, 20)).astype(np.float32)
        dense = np.vstack([dense, dense])  # rank <= 10 < 20 columns
        A = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        from repro.sparse import scan_transpose

        AT = scan_transpose(A)

        class Op:
            num_rays, num_pixels = A.num_rows, A.num_cols
            forward = staticmethod(lambda x: A.spmv(np.asarray(x, dtype=np.float32)))
            adjoint = staticmethod(lambda y: AT.spmv(np.asarray(y, dtype=np.float32)))

        y = np.ones(20)
        res = cgls(Op(), y, num_iterations=100)
        assert np.isfinite(res.x).all()
        assert res.residual_norms[-1] <= res.residual_norms[0]

    def test_sirt_with_zero_row(self):
        import scipy.sparse as sp

        dense = np.zeros((4, 4), dtype=np.float32)
        dense[0] = [1, 1, 0, 0]
        dense[2] = [0, 0, 2, 1]
        A = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        from repro.sparse import scan_transpose

        AT = scan_transpose(A)

        class Op:
            num_rays, num_pixels = 4, 4
            forward = staticmethod(lambda x: A.spmv(np.asarray(x, dtype=np.float32)))
            adjoint = staticmethod(lambda y: AT.spmv(np.asarray(y, dtype=np.float32)))
            row_sums = staticmethod(A.row_sums)
            col_sums = staticmethod(A.col_sums)

        res = sirt(Op(), np.array([2.0, 5.0, 3.0, -1.0]), num_iterations=10)
        assert np.isfinite(res.x).all()
