"""Shared fixtures: small geometries and traced matrices.

Session-scoped because tracing is the expensive step; tests must not
mutate fixture objects (CSRMatrix methods are non-mutating by design).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix
from repro.trace import build_projection_matrix


@pytest.fixture(autouse=True)
def _isolated_plan_cache(tmp_path, monkeypatch):
    """Point the default plan cache at a per-test temp dir.

    CLI commands default to ``--cache auto``; without this, tests would
    read and write the developer's real ``~/.cache/repro/plans``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "plan-cache"))


@pytest.fixture(scope="session")
def small_geometry() -> ParallelBeamGeometry:
    """A 36x24 sinogram on a 24x24 grid — fast to trace."""
    return ParallelBeamGeometry(36, 24)


@pytest.fixture(scope="session")
def small_matrix(small_geometry) -> CSRMatrix:
    """Row-major traced matrix of the small geometry."""
    return CSRMatrix.from_scipy(build_projection_matrix(small_geometry))


@pytest.fixture(scope="session")
def medium_geometry() -> ParallelBeamGeometry:
    """A 60x48 sinogram on a 48x48 grid."""
    return ParallelBeamGeometry(60, 48)


@pytest.fixture(scope="session")
def medium_matrix(medium_geometry) -> CSRMatrix:
    return CSRMatrix.from_scipy(build_projection_matrix(medium_geometry))


@pytest.fixture(scope="session")
def ordered_medium(medium_geometry, medium_matrix):
    """(matrix, tomo_ordering, sino_ordering) in pseudo-Hilbert order."""
    n = medium_geometry.grid.n
    tomo = make_ordering("pseudo-hilbert", n, n, min_tiles=16)
    sino = make_ordering(
        "pseudo-hilbert",
        medium_geometry.num_angles,
        medium_geometry.num_channels,
        min_tiles=16,
    )
    matrix = medium_matrix.permute(sino.perm, tomo.rank).sort_rows_by_index()
    return matrix, tomo, sino


@pytest.fixture(scope="session")
def small_operator(small_geometry):
    """Preprocessed buffered operator on the small geometry."""
    op, _ = preprocess(
        small_geometry,
        config=OperatorConfig(kernel="buffered", partition_size=32, buffer_bytes=4096),
    )
    return op


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
