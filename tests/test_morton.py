"""Tests for Morton (Z-order) encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import morton_decode, morton_encode


class TestMorton:
    def test_known_codes(self):
        # Bit interleaving: (x=1, y=0) -> 1, (x=0, y=1) -> 2, (x=1, y=1) -> 3.
        x = np.array([0, 1, 0, 1, 2, 3])
        y = np.array([0, 0, 1, 1, 2, 3])
        np.testing.assert_array_equal(morton_encode(x, y), [0, 1, 2, 3, 12, 15])

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 1 << 20, size=50)
        y = rng.integers(0, 1 << 20, size=50)
        code = morton_encode(x, y)
        x2, y2 = morton_decode(code)
        np.testing.assert_array_equal(x, x2)
        np.testing.assert_array_equal(y, y2)

    def test_large_coordinates(self):
        x = np.array([(1 << 31) - 1])
        y = np.array([(1 << 31) - 1])
        code = morton_encode(x, y)
        x2, y2 = morton_decode(code)
        assert x2[0] == x[0] and y2[0] == y[0]

    def test_quadrant_structure(self):
        """Codes 0..3 fill the 2x2 block, 0..15 the 4x4 block, etc."""
        x, y = morton_decode(np.arange(16))
        assert x.max() == 3 and y.max() == 3
        x, y = morton_decode(np.arange(4))
        assert x.max() == 1 and y.max() == 1

    def test_disconnected_jumps_exist(self):
        """The property that disqualifies Morton for partition locality
        (paper Section 3.2.3): consecutive codes can be far apart."""
        x, y = morton_decode(np.arange(64))
        steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert steps.max() > 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([-1]), np.array([0]))
        with pytest.raises(ValueError):
            morton_decode(np.array([-5]))

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([1 << 31]), np.array([0]))
