"""Tests for the MemXCT operator: kernels, transforms, footprints."""

import numpy as np
import pytest

from repro.core import KERNELS, MemXCTOperator, OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry


@pytest.fixture(scope="module")
def operators():
    """One operator per kernel on the same geometry."""
    g = ParallelBeamGeometry(36, 24)
    ops = {}
    for kernel in KERNELS:
        cfg = OperatorConfig(kernel=kernel, partition_size=16, buffer_bytes=512)
        ops[kernel], _ = preprocess(g, config=cfg)
    return g, ops


class TestKernelsAgree:
    def test_forward_all_kernels_equal(self, operators, rng):
        g, ops = operators
        x = rng.random(ops["csr"].num_pixels).astype(np.float32)
        ref = ops["csr"].forward(x)
        for kernel in ("buffered", "ell"):
            np.testing.assert_allclose(ops[kernel].forward(x), ref, rtol=1e-4, atol=1e-4)

    def test_adjoint_all_kernels_equal(self, operators, rng):
        g, ops = operators
        y = rng.random(ops["csr"].num_rays).astype(np.float32)
        ref = ops["csr"].adjoint(y)
        for kernel in ("buffered", "ell"):
            np.testing.assert_allclose(ops[kernel].adjoint(y), ref, rtol=1e-4, atol=1e-4)

    def test_adjoint_is_true_transpose(self, operators, rng):
        _, ops = operators
        op = ops["buffered"]
        x = rng.random(op.num_pixels).astype(np.float32)
        y = rng.random(op.num_rays).astype(np.float32)
        lhs = float(np.dot(op.forward(x).astype(np.float64), y))
        rhs = float(np.dot(x.astype(np.float64), op.adjoint(y)))
        assert lhs == pytest.approx(rhs, rel=1e-4)


class TestImageSpace:
    def test_roundtrips(self, operators, rng):
        _, ops = operators
        op = ops["csr"]
        img = rng.random((24, 24))
        np.testing.assert_array_equal(op.ordered_to_image(op.image_to_ordered(img)), img)
        sino = rng.random((36, 24))
        np.testing.assert_array_equal(
            op.ordered_to_sinogram(op.sinogram_to_ordered(sino)), sino
        )

    def test_project_image_is_layout_invariant(self, rng):
        """The same physical projection regardless of ordering scheme."""
        g = ParallelBeamGeometry(20, 16)
        img = rng.random((16, 16))
        sinos = []
        for ordering in ("row-major", "pseudo-hilbert"):
            op, _ = preprocess(g, ordering=ordering)
            sinos.append(op.project_image(img))
        np.testing.assert_allclose(sinos[0], sinos[1], rtol=1e-4, atol=1e-5)

    def test_backproject_sinogram_shape(self, operators, rng):
        _, ops = operators
        out = ops["csr"].backproject_sinogram(rng.random((36, 24)))
        assert out.shape == (24, 24)


class TestRowSubset:
    def test_subset_forward_matches_full(self, operators, rng):
        _, ops = operators
        op = ops["csr"]
        x = rng.random(op.num_pixels).astype(np.float32)
        rows = np.array([3, 17, 100, 101])
        np.testing.assert_allclose(
            op.row_subset_forward(x, rows), op.forward(x)[rows], rtol=1e-5, atol=1e-5
        )

    def test_subset_adjoint_matches_masked_full(self, operators, rng):
        _, ops = operators
        op = ops["csr"]
        rows = np.array([5, 50, 500])
        vals = rng.random(3).astype(np.float32)
        full = np.zeros(op.num_rays, dtype=np.float32)
        full[rows] = vals
        np.testing.assert_allclose(
            op.row_subset_adjoint(vals, rows), op.adjoint(full), rtol=1e-4, atol=1e-5
        )

    def test_subset_operators_memoized_per_row_set(self, rng):
        """Repeated calls with the same row set (ICD's inner loop) must
        reuse the extracted sub-operator instead of re-slicing it."""
        g = ParallelBeamGeometry(20, 16)
        op, _ = preprocess(g, config=OperatorConfig(kernel="csr"))
        rows = np.array([2, 9, 40])
        first = op._subset_operators(rows)
        assert op._subset_operators(list(rows)) is first  # key by content
        assert op._subset_operators(np.array([2, 9, 41])) is not first
        assert len(op._subset_cache) == 2
        # Memoization must not change results.
        x = rng.random(op.num_pixels).astype(np.float32)
        a = op.row_subset_forward(x, rows)
        b = op.row_subset_forward(x, rows)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_allclose(a, op.forward(x)[rows], rtol=1e-5, atol=1e-5)

    def test_subset_cache_bounded(self):
        g = ParallelBeamGeometry(12, 8)
        op, _ = preprocess(g, config=OperatorConfig(kernel="csr"))
        cap = MemXCTOperator._SUBSET_CACHE_CAPACITY
        x = np.ones(op.num_pixels, dtype=np.float32)
        for start in range(cap + 10):
            op.row_subset_forward(x, np.array([start % op.num_rays]))
        assert len(op._subset_cache) <= cap


class TestFootprints:
    def test_table3_conventions(self, operators):
        g, ops = operators
        fp = ops["csr"].memory_footprint()
        assert fp["irregular_forward"] == 24 * 24 * 4
        assert fp["irregular_adjoint"] == 36 * 24 * 4
        assert fp["regular_forward"] == ops["csr"].matrix.nnz * 8

    def test_buffered_uses_16bit_indices(self, operators):
        _, ops = operators
        fp = ops["buffered"].memory_footprint()
        assert fp["regular_forward"] == ops["buffered"].matrix.nnz * 6


class TestConfig:
    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            OperatorConfig(kernel="dense")

    @pytest.mark.parametrize("partition_size", [0, -1, -128])
    def test_nonpositive_partition_size_rejected(self, partition_size):
        with pytest.raises(ValueError, match="partition_size must be >= 1"):
            OperatorConfig(partition_size=partition_size)

    @pytest.mark.parametrize("buffer_bytes", [0, -1, -4096])
    def test_nonpositive_buffer_bytes_rejected(self, buffer_bytes):
        with pytest.raises(ValueError, match="buffer_bytes must be > 0"):
            OperatorConfig(buffer_bytes=buffer_bytes)

    def test_error_messages_name_the_bad_value(self):
        with pytest.raises(ValueError, match="got 0"):
            OperatorConfig(partition_size=0)
        with pytest.raises(ValueError, match="got -8"):
            OperatorConfig(buffer_bytes=-8)

    def test_minimal_valid_config_accepted(self):
        cfg = OperatorConfig(kernel="buffered", partition_size=1, buffer_bytes=4)
        assert cfg.partition_size == 1 and cfg.buffer_bytes == 4

    def test_num_properties(self, operators):
        g, ops = operators
        assert ops["csr"].num_rays == g.num_rays
        assert ops["csr"].num_pixels == g.grid.num_pixels
