"""Tests for Siddon ray tracing: vectorized vs reference, physics."""

import numpy as np
import pytest

from repro.geometry import Grid2D, ParallelBeamGeometry
from repro.trace import RaySegments, trace_angle, trace_ray


def _segments_as_dict(segs: RaySegments, ray_index: int) -> dict[int, float]:
    mask = segs.ray_index == ray_index
    return dict(zip(segs.pixel_index[mask].tolist(), segs.length[mask].tolist()))


class TestAgainstReference:
    @pytest.mark.parametrize("angle_index", [0, 3, 7, 11, 17, 23])
    def test_vectorized_matches_per_ray(self, angle_index):
        g = ParallelBeamGeometry(24, 16)
        segs = trace_angle(g, angle_index)
        for channel in range(0, 16, 3):
            ref = trace_ray(g, angle_index, channel)
            ridx = int(g.ray_index(angle_index, channel))
            vec = _segments_as_dict(segs, ridx)
            refd = _segments_as_dict(ref, ridx)
            assert set(vec) == set(refd)
            for pixel, length in refd.items():
                assert vec[pixel] == pytest.approx(length, abs=1e-9)

    def test_odd_grid_and_angles(self):
        g = ParallelBeamGeometry(7, 9)
        for ai in range(7):
            segs = trace_angle(g, ai)
            for ch in range(9):
                ref = trace_ray(g, ai, ch)
                ridx = int(g.ray_index(ai, ch))
                assert _segments_as_dict(segs, ridx).keys() == _segments_as_dict(
                    ref, ridx
                ).keys()


class TestPhysics:
    def test_axis_aligned_ray_length(self):
        """A vertical ray (angle 0) through the grid has total length equal
        to the grid extent, one unit per pixel."""
        g = ParallelBeamGeometry(4, 8)
        segs = trace_angle(g, 0)
        for ch in range(8):
            ridx = int(g.ray_index(0, ch))
            lengths = segs.length[segs.ray_index == ridx]
            assert lengths.shape[0] == 8
            np.testing.assert_allclose(lengths, 1.0)

    def test_total_lengths_bounded_by_diameter(self):
        g = ParallelBeamGeometry(30, 12)
        diag = 12 * np.sqrt(2.0)
        for ai in range(30):
            segs = trace_angle(g, ai)
            sums = np.zeros(g.num_rays)
            np.add.at(sums, segs.ray_index, segs.length)
            assert sums.max() <= diag + 1e-9

    def test_pixel_size_scales_lengths(self):
        g1 = ParallelBeamGeometry(6, 8)
        g2 = ParallelBeamGeometry(6, 8, grid=Grid2D(8, pixel_size=2.0))
        s1 = trace_angle(g1, 2)
        s2 = trace_angle(g2, 2)
        assert s2.length.sum() == pytest.approx(2.0 * s1.length.sum(), rel=1e-9)

    def test_diagonal_segment_lengths_bounded_by_sqrt2(self):
        """At 45 degrees every per-cell crossing is at most sqrt(2) (the
        pixel diagonal), and near-diagonal crossings longer than one
        pixel side must occur."""
        g = ParallelBeamGeometry(8, 8)  # angles k*pi/8; index 2 = pi/4
        segs = trace_angle(g, 2)
        assert segs.length.max() <= np.sqrt(2.0) + 1e-9
        assert segs.length.max() > 1.0

    def test_all_pixels_covered_by_some_ray(self):
        g = ParallelBeamGeometry(40, 16)
        covered = np.zeros(g.grid.num_pixels, dtype=bool)
        for ai in range(g.num_angles):
            covered[trace_angle(g, ai).pixel_index] = True
        assert covered.all()

    def test_no_out_of_grid_pixels(self):
        g = ParallelBeamGeometry(24, 10)
        for ai in range(24):
            segs = trace_angle(g, ai)
            assert segs.pixel_index.min() >= 0
            assert segs.pixel_index.max() < 100
            assert (segs.length > 0).all()

    def test_ray_outside_grid_is_empty(self):
        """A geometry whose grid is much smaller than the detector span
        leaves edge channels missing the grid entirely."""
        g = ParallelBeamGeometry(4, 16, grid=Grid2D(4))
        segs = trace_angle(g, 1)
        edge_rays = {int(g.ray_index(1, 0)), int(g.ray_index(1, 15))}
        assert edge_rays.isdisjoint(set(segs.ray_index.tolist()))


class TestRaySegments:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RaySegments(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_len(self):
        s = RaySegments(np.zeros(5), np.zeros(5), np.ones(5))
        assert len(s) == 5
