"""Tests for phantoms and the Beer-law noise model."""

import numpy as np
import pytest

from repro.phantoms import beer_law_sinogram, brain_phantom, shale_phantom, shepp_logan


class TestSheppLogan:
    def test_shape_and_range(self):
        img = shepp_logan(64)
        assert img.shape == (64, 64)
        assert img.max() <= 1.0 + 1e-12
        assert img.min() >= -1e-12

    def test_skull_brighter_than_interior(self):
        img = shepp_logan(128)
        assert img[64, 5] == 0.0  # outside
        # skull ellipse ring near the left edge of the head
        assert img[64, 20] == pytest.approx(1.0)
        assert 0.0 < img[64, 64] < 0.5  # brain tissue

    def test_deterministic(self):
        np.testing.assert_array_equal(shepp_logan(32), shepp_logan(32))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            shepp_logan(0)


class TestSyntheticPhantoms:
    @pytest.mark.parametrize("factory", [shale_phantom, brain_phantom])
    def test_nonnegative_and_bounded(self, factory):
        img = factory(64, seed=0)
        assert img.shape == (64, 64)
        assert img.min() >= 0.0
        assert img.max() < 3.0

    @pytest.mark.parametrize("factory", [shale_phantom, brain_phantom])
    def test_seed_determinism(self, factory):
        np.testing.assert_array_equal(factory(48, seed=7), factory(48, seed=7))
        assert not np.array_equal(factory(48, seed=7), factory(48, seed=8))

    @pytest.mark.parametrize("factory", [shale_phantom, brain_phantom])
    def test_support_inside_disk(self, factory):
        img = factory(64, seed=1)
        c = (np.arange(64) + 0.5) / 64 * 2 - 1
        x, y = np.meshgrid(c, c, indexing="xy")
        outside = x * x + y * y > 0.97**2
        np.testing.assert_array_equal(img[outside], 0.0)

    def test_brain_has_multiscale_content(self):
        """Vessels must create bright fine structure inside the tissue."""
        img = brain_phantom(128, seed=0)
        interior = img[30:98, 30:98]
        assert (interior > 0.55).sum() > 20  # vessel pixels exist
        assert interior.std() > 0.05

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            shale_phantom(-1)


class TestBeerLawNoise:
    def test_unbiased_at_high_dose(self):
        clean = np.linspace(0.1, 2.0, 200).reshape(20, 10)
        noisy = beer_law_sinogram(clean, incident_photons=1e8, seed=0)
        np.testing.assert_allclose(noisy, clean, rtol=0.02, atol=0.01)

    def test_noise_grows_at_low_dose(self):
        clean = np.full((50, 50), 1.0)
        low = beer_law_sinogram(clean, incident_photons=100, seed=1)
        high = beer_law_sinogram(clean, incident_photons=1e6, seed=1)
        assert np.std(low - clean) > 5 * np.std(high - clean)

    def test_shape_preserved(self):
        clean = np.ones((7, 13))
        assert beer_law_sinogram(clean, 1e4).shape == (7, 13)

    def test_deterministic_per_seed(self):
        clean = np.ones((5, 5))
        a = beer_law_sinogram(clean, 1e3, seed=3)
        b = beer_law_sinogram(clean, 1e3, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_attenuation_scale_override(self):
        clean = np.full((10, 10), 4.0)
        noisy = beer_law_sinogram(clean, incident_photons=1e8, seed=0, attenuation_scale=0.25)
        np.testing.assert_allclose(noisy, clean, rtol=0.05)

    def test_invalid_photons(self):
        with pytest.raises(ValueError):
            beer_law_sinogram(np.ones((2, 2)), incident_photons=0)

    def test_finite_even_at_extreme_attenuation(self):
        """Fully opaque rays must not produce inf (count floor of 1)."""
        clean = np.full((4, 4), 100.0)
        noisy = beer_law_sinogram(clean, incident_photons=10, seed=0, attenuation_scale=1.0)
        assert np.isfinite(noisy).all()
