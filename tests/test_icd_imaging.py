"""Tests for the ICD solver and the imaging utilities."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import CSRMatrix, scan_transpose
from repro.solvers import cgls, icd
from repro.utils import ascii_preview, save_pgm


@pytest.fixture()
def system(rng):
    S = sp.random(80, 40, density=0.25, random_state=rng, format="csr", dtype=np.float32)
    S.data[:] = np.abs(S.data) + 0.1
    A = CSRMatrix.from_scipy(S)
    AT = scan_transpose(A)
    x_true = rng.random(40)
    y = A.spmv(x_true.astype(np.float32))
    return A, AT, x_true, y


class TestICD:
    def test_residual_decreases_monotonically(self, system):
        A, AT, _, y = system
        res = icd(A, AT, y, num_sweeps=5)
        r = np.asarray(res.residual_norms)
        assert np.all(np.diff(r) <= 1e-9)

    def test_converges_on_consistent_system(self, system):
        A, AT, x_true, y = system
        res = icd(A, AT, y, num_sweeps=60)
        assert res.residual_norms[-1] < 0.02 * res.residual_norms[0]

    def test_single_sweep_exact_per_coordinate(self):
        """On a diagonal system one sweep solves exactly."""
        dense = np.diag([1.0, 2.0, 4.0]).astype(np.float32)
        A = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        AT = scan_transpose(A)
        y = np.array([3.0, 8.0, 4.0])
        res = icd(A, AT, y, num_sweeps=1)
        np.testing.assert_allclose(res.x, [3.0, 4.0, 1.0], atol=1e-6)
        assert res.residual_norms[-1] < 1e-6

    def test_nonnegativity(self, system):
        A, AT, _, y = system
        res = icd(A, AT, -y, num_sweeps=3, nonnegativity=True)
        assert (res.x >= 0).all()

    def test_warm_start_from_cg(self, system):
        """The paper's plug-and-play story: ICD refines a CG iterate."""
        A, AT, _, y = system

        class Op:
            num_rays, num_pixels = A.num_rows, A.num_cols
            forward = staticmethod(lambda x: A.spmv(np.asarray(x, dtype=np.float32)))
            adjoint = staticmethod(lambda v: AT.spmv(np.asarray(v, dtype=np.float32)))

        warm = cgls(Op(), y, num_iterations=5).x
        res = icd(A, AT, y, num_sweeps=2, x0=warm)
        assert res.residual_norms[-1] <= res.residual_norms[0]

    def test_empty_columns_skipped(self):
        dense = np.zeros((3, 3), dtype=np.float32)
        dense[0, 0] = 1.0  # columns 1, 2 empty
        A = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        res = icd(A, scan_transpose(A), np.array([2.0, 0.0, 0.0]), num_sweeps=1)
        np.testing.assert_allclose(res.x, [2.0, 0.0, 0.0], atol=1e-7)

    def test_validation(self, system):
        A, AT, _, y = system
        with pytest.raises(ValueError):
            icd(A, AT, y[:-1])
        with pytest.raises(ValueError):
            icd(A, A, y)  # wrong transpose shape


class TestImaging:
    def test_pgm_roundtrip(self, tmp_path):
        img = np.linspace(0, 1, 12).reshape(3, 4)
        path = tmp_path / "img.pgm"
        save_pgm(path, img)
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n4 3\n255\n")
        pixels = np.frombuffer(raw.split(b"255\n", 1)[1], dtype=np.uint8)
        assert pixels.shape[0] == 12
        assert pixels[0] == 0 and pixels[-1] == 255

    def test_pgm_fixed_range(self, tmp_path):
        img = np.full((2, 2), 0.5)
        path = tmp_path / "img.pgm"
        save_pgm(path, img, vmin=0.0, vmax=1.0)
        pixels = np.frombuffer(path.read_bytes().split(b"255\n", 1)[1], dtype=np.uint8)
        assert (pixels == 127).all()

    def test_pgm_validates_shape(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(tmp_path / "x.pgm", np.zeros(5))

    def test_ascii_preview_shape(self):
        img = np.zeros((64, 64))
        img[:32] = 1.0
        out = ascii_preview(img, width=16)
        lines = out.splitlines()
        assert len(lines) == 8  # rows halved for character aspect ratio
        assert all(len(l) == 16 for l in lines)
        assert "@" in lines[0] and lines[-1].strip() == ""

    def test_ascii_constant_image(self):
        out = ascii_preview(np.ones((8, 8)), width=4)
        assert set(out.replace("\n", "")) == {" "}

    def test_ascii_tiny_image(self):
        assert ascii_preview(np.ones((1, 1))).strip() == ""

    def test_ascii_validates_shape(self):
        with pytest.raises(ValueError):
            ascii_preview(np.zeros(5))
