"""The autotuner: search determinism, persistence, and degradation.

The contract under test (docs/autotuning.md): the predict-then-trial
search is deterministic under a fixed seed; when measurements agree
with the model the pruned search lands within 5% of an exhaustive
sweep; a persisted record makes warm runs free; and a corrupt or stale
record degrades to a re-tune with a warning — it is never trusted.
"""

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro import obs
from repro.autotune import (
    Autotuner,
    Candidate,
    TuneStore,
    TuningIntegrityWarning,
    TuningRecord,
    TuningRecordError,
    tune_fingerprint,
)
from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.sparse import CSRMatrix, scan_transpose


def _problem(rows=96, cols=80, seed=0):
    rng = np.random.default_rng(seed)
    S = sp.random(rows, cols, density=0.2, random_state=rng, format="csr",
                  dtype=np.float32)
    A = CSRMatrix.from_scipy(S).sort_rows_by_index()
    return A, scan_transpose(A)


def _synthetic_measure(scale=1.0):
    """A deterministic, model-free cost: cheapest is buffered/32/8192."""

    def measure(cand, forward, adjoint):
        base = {"csr": 3.0, "buffered": 1.0, "ell": 2.0}[cand.kernel]
        cost = base + cand.partition_size / 1e3 + cand.buffer_bytes / 1e6
        cost += 0.05 * (cand.workers - 1)
        return scale * cost

    return measure


class TestSearch:
    def test_deterministic_under_fixed_seed(self):
        A, AT = _problem()
        outcomes = [
            Autotuner(seed=7, measure=_synthetic_measure(), workers_options=(1,)).tune(A, AT)
            for _ in range(2)
        ]
        assert outcomes[0].best.candidate == outcomes[1].best.candidate
        assert [s.predicted_seconds for s in outcomes[0].predictions] == [
            s.predicted_seconds for s in outcomes[1].predictions
        ]
        assert [t.measured_seconds for t in outcomes[0].trials] == [
            t.measured_seconds for t in outcomes[1].trials
        ]

    def test_pruned_search_within_5pct_of_exhaustive(self):
        """When trials agree with the model, top-K pruning loses <= 5%.

        The injected measure reproduces the model's own ranking (each
        trial returns the candidate's predicted time), so the pruned
        search must find the same winner an exhaustive sweep finds.
        """
        A, AT = _problem()
        probe = Autotuner(seed=0, workers_options=(1,))
        predicted = {
            s.candidate: s.predicted_seconds for s in probe.predict(A)
        }

        def model_measure(cand, forward, adjoint):
            return predicted[Candidate(cand.kernel, cand.partition_size,
                                       cand.buffer_bytes)]

        tuner = Autotuner(seed=0, measure=model_measure, workers_options=(1,),
                          top_k=3)
        outcome = tuner.tune(A, AT)
        exhaustive_best = min(predicted.values())
        assert outcome.best.measured_seconds <= 1.05 * exhaustive_best

    def test_predict_mode_skips_trials(self):
        A, AT = _problem()
        calls = []

        def counting_measure(cand, forward, adjoint):
            calls.append(cand)
            return 1.0

        outcome = Autotuner(measure=counting_measure).tune(A, AT, mode="predict")
        assert outcome.mode == "predict"
        assert outcome.trials == [] and calls == []
        assert outcome.best.measured_seconds is None
        assert outcome.candidates_considered > 0

    def test_candidate_space_shape(self):
        tuner = Autotuner(partition_sizes=(32, 64), buffer_sizes=(8192, 16384))
        space = tuner.candidate_space()
        kernels = {c.kernel for c in space}
        assert kernels == {"csr", "buffered", "ell"}
        assert sum(c.kernel == "csr" for c in space) == 1  # no knobs
        assert sum(c.kernel == "ell" for c in space) == 2  # partition only
        assert sum(c.kernel == "buffered" for c in space) == 4  # both axes

    def test_counters_cover_candidates_and_trials(self):
        A, AT = _problem()
        with obs.capture() as cap:
            outcome = Autotuner(
                measure=_synthetic_measure(), workers_options=(1,), top_k=2
            ).tune(A, AT)
        assert cap.counters["autotune.candidates"].total == outcome.candidates_considered
        assert cap.counters["autotune.trials"].total == len(outcome.trials)
        # Top-K pruning plus refinement never re-measures a candidate.
        assert 0 < len(outcome.trials) <= outcome.candidates_considered

    def test_real_timing_path_runs(self):
        """No injected measure: actual trials on the built layouts."""
        A, AT = _problem(rows=48, cols=40)
        outcome = Autotuner(workers_options=(1,), top_k=2, trial_repeats=1).tune(A, AT)
        assert all(t.measured_seconds > 0 for t in outcome.trials)


class TestPersistence:
    def test_warm_hit_reuses_record_and_plan(self, tmp_path):
        g = ParallelBeamGeometry(24, 32)
        with obs.capture() as cap:
            op1, rep1 = preprocess(g, OperatorConfig(tune="auto"), cache=tmp_path)
        assert not rep1.cache_hit
        assert "autotune_seconds" in rep1.extra
        assert cap.counters["autotune.misses"].total == 1

        with obs.capture() as cap:
            op2, rep2 = preprocess(g, OperatorConfig(tune="auto"), cache=tmp_path)
        assert rep2.cache_hit  # tuned plan itself was cached
        assert rep2.extra.get("autotune_warm") == 1.0
        assert cap.counters["autotune.hits"].total == 1
        assert "autotune.trials" not in cap.counters  # no search ran
        assert op2.config == op1.config

    def test_force_mode_ignores_record(self, tmp_path):
        g = ParallelBeamGeometry(24, 32)
        preprocess(g, OperatorConfig(tune="auto"), cache=tmp_path)
        _, rep = preprocess(g, OperatorConfig(tune="force"), cache=tmp_path)
        assert "autotune_seconds" in rep.extra  # searched again
        assert rep.extra.get("autotune_warm") is None

    def test_fingerprint_separates_dtype_and_geometry(self):
        g1 = ParallelBeamGeometry(24, 32)
        g2 = ParallelBeamGeometry(24, 36)
        k_default = tune_fingerprint(g1)
        assert k_default == tune_fingerprint(g1)  # stable
        assert k_default != tune_fingerprint(g1, dtype="float32")
        assert tune_fingerprint(g1, dtype="float32") != tune_fingerprint(
            g1, dtype="float64"
        )
        assert k_default != tune_fingerprint(g2)

    def test_record_roundtrip(self, tmp_path):
        store = TuneStore(tmp_path)
        record = TuningRecord(
            key="k1", kernel="buffered", partition_size=64, buffer_bytes=16384,
            workers=2, dtype="float32", mode="auto", predicted_seconds=1e-3,
            measured_seconds=2e-3, candidates_considered=21, trials=6,
            cpu_count=0,
        )
        store.save("k1", record)
        loaded = store.load("k1")
        assert loaded == record
        assert store.entries() == [("k1", record)]
        assert store.clear() == 1
        assert store.load("k1") is None

    def test_apply_respects_explicit_workers(self):
        record = TuningRecord(
            key="k", kernel="ell", partition_size=64, buffer_bytes=32768,
            workers=2, dtype=None, mode="auto", predicted_seconds=1.0,
            measured_seconds=1.0, candidates_considered=1, trials=1, cpu_count=0,
        )
        tuned = record.apply(OperatorConfig(tune="auto"))
        assert tuned.kernel == "ell" and tuned.workers == 2 and tuned.tune is None
        pinned = record.apply(OperatorConfig(tune="auto", workers=4))
        assert pinned.workers == 4  # user's execution choice wins

    def test_apply_tuned_serial_leaves_workers_unset(self):
        record = TuningRecord(
            key="k", kernel="csr", partition_size=128, buffer_bytes=32768,
            workers=1, dtype=None, mode="auto", predicted_seconds=1.0,
            measured_seconds=1.0, candidates_considered=1, trials=1, cpu_count=0,
        )
        assert record.apply(OperatorConfig(tune="auto")).workers is None


class TestDegradation:
    def test_corrupt_record_warns_discards_and_retunes(self, tmp_path):
        g = ParallelBeamGeometry(24, 32)
        _, rep1 = preprocess(g, OperatorConfig(tune="auto"), cache=tmp_path)
        store = TuneStore.resolve(tmp_path)
        key = tune_fingerprint(g)
        path = store.path_for(key)
        assert path.is_file()
        path.write_text("{not json")

        with pytest.warns(TuningIntegrityWarning):
            _, rep2 = preprocess(g, OperatorConfig(tune="auto"), cache=tmp_path)
        assert "autotune_seconds" in rep2.extra  # degraded to a re-tune
        assert store.load(key) is not None  # fresh record was saved

    def test_stale_cpu_count_degrades(self, tmp_path):
        store = TuneStore(tmp_path)
        record = TuningRecord(
            key="k", kernel="csr", partition_size=128, buffer_bytes=32768,
            workers=1, dtype=None, mode="auto", predicted_seconds=1.0,
            measured_seconds=1.0, candidates_considered=1, trials=1,
            cpu_count=9999,  # not this machine
        )
        store.save("k", record)
        with pytest.warns(TuningIntegrityWarning, match="CPUs"):
            assert store.load("k") is None
        assert not store.path_for("k").exists()  # discarded, not retried

    def test_wrong_schema_version_degrades(self, tmp_path):
        store = TuneStore(tmp_path)
        record = TuningRecord(
            key="k", kernel="csr", partition_size=128, buffer_bytes=32768,
            workers=1, dtype=None, mode="auto", predicted_seconds=1.0,
            measured_seconds=1.0, candidates_considered=1, trials=1, cpu_count=0,
        )
        store.save("k", record)
        doc = json.loads(store.path_for("k").read_text())
        doc["record_version"] = 99
        store.path_for("k").write_text(json.dumps(doc))
        with pytest.warns(TuningIntegrityWarning, match="version"):
            assert store.load("k") is None

    def test_key_mismatch_degrades(self, tmp_path):
        store = TuneStore(tmp_path)
        record = TuningRecord(
            key="other", kernel="csr", partition_size=128, buffer_bytes=32768,
            workers=1, dtype=None, mode="auto", predicted_seconds=1.0,
            measured_seconds=1.0, candidates_considered=1, trials=1, cpu_count=0,
        )
        store.save("k", record)
        with pytest.warns(TuningIntegrityWarning, match="mismatch"):
            assert store.load("k") is None

    @pytest.mark.parametrize("field,value", [
        ("kernel", "warp"),
        ("partition_size", 0),
        ("buffer_bytes", 1),
        ("workers", 0),
        ("predicted_seconds", "fast"),
    ])
    def test_out_of_range_records_rejected(self, field, value):
        doc = TuningRecord(
            key="k", kernel="csr", partition_size=128, buffer_bytes=32768,
            workers=1, dtype=None, mode="auto", predicted_seconds=1.0,
            measured_seconds=1.0, candidates_considered=1, trials=1, cpu_count=0,
        ).to_dict()
        doc[field] = value
        with pytest.raises(TuningRecordError):
            TuningRecord.from_dict(doc)

    def test_no_cache_tunes_unpersisted(self):
        g = ParallelBeamGeometry(24, 32)
        op, rep = preprocess(g, OperatorConfig(tune="auto"), cache=None)
        assert "autotune_seconds" in rep.extra
        assert op.config.tune is None  # resolved even without a store
