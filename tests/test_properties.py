"""Property-based invariants spanning the core data structures.

These are the load-bearing algebraic facts the system relies on:
linearity of every SpMV kernel, exact adjointness of the transpose
pair, bijectivity of every ordering, and equality of all kernel/layout
variants on arbitrary inputs.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import FanBeamGeometry, ParallelBeamGeometry
from repro.ordering import make_ordering
from repro.sparse import CSRMatrix, build_buffered, build_ell, scan_transpose
from repro.trace import build_fan_projection_matrix, build_projection_matrix


def _random_matrix(rows, cols, seed, density=0.2):
    rng = np.random.default_rng(seed)
    S = sp.random(rows, cols, density=density, random_state=rng, format="csr", dtype=np.float32)
    return CSRMatrix.from_scipy(S).sort_rows_by_index()


class TestKernelAlgebra:
    @given(seed=st.integers(0, 10**6), a=st.floats(-3, 3), b=st.floats(-3, 3))
    @settings(max_examples=25, deadline=None)
    def test_spmv_linearity(self, seed, a, b):
        A = _random_matrix(30, 25, seed)
        rng = np.random.default_rng(seed + 1)
        x = rng.standard_normal(25).astype(np.float32)
        y = rng.standard_normal(25).astype(np.float32)
        combined = A.spmv((a * x + b * y).astype(np.float32))
        split = a * A.spmv(x) + b * A.spmv(y)
        np.testing.assert_allclose(combined, split, atol=1e-3)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_adjoint_inner_product(self, seed):
        """<A x, y> == <x, A^T y> for the scan-transposed pair."""
        A = _random_matrix(40, 30, seed)
        AT = scan_transpose(A)
        rng = np.random.default_rng(seed + 2)
        x = rng.standard_normal(30).astype(np.float32)
        y = rng.standard_normal(40).astype(np.float32)
        lhs = float(A.spmv(x).astype(np.float64) @ y)
        rhs = float(x.astype(np.float64) @ AT.spmv(y))
        assert lhs == pytest.approx(rhs, rel=1e-3, abs=1e-3)

    @given(
        seed=st.integers(0, 10**6),
        partition=st.sampled_from([1, 7, 16]),
        buffer_elems=st.sampled_from([2, 8, 64]),
    )
    @settings(max_examples=20, deadline=None)
    def test_all_layouts_agree(self, seed, partition, buffer_elems):
        A = _random_matrix(35, 28, seed)
        rng = np.random.default_rng(seed + 3)
        x = rng.standard_normal(28).astype(np.float32)
        ref = A.spmv(x)
        np.testing.assert_allclose(build_ell(A, partition).spmv(x), ref, atol=1e-3)
        buf = build_buffered(A, partition, buffer_elems * 4)
        np.testing.assert_allclose(buf.spmv_vectorized(x), ref, atol=1e-3)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_double_transpose_identity(self, seed):
        A = _random_matrix(25, 25, seed)
        TT = scan_transpose(scan_transpose(A))
        np.testing.assert_allclose(
            TT.to_scipy().toarray(), A.to_scipy().toarray(), atol=1e-6
        )


class TestOrderingAlgebra:
    @given(
        rows=st.integers(2, 24),
        cols=st.integers(2, 24),
        name=st.sampled_from(["morton", "hilbert", "pseudo-hilbert"]),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_reorder_preserves_multiset(self, rows, cols, name, seed):
        o = make_ordering(name, rows, cols)
        data = np.random.default_rng(seed).standard_normal(rows * cols)
        reordered = o.to_ordered(data)
        assert sorted(reordered.tolist()) == sorted(data.tolist())
        np.testing.assert_array_equal(o.from_ordered(reordered).ravel(), data)

    @given(rows=st.integers(2, 20), cols=st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_permutation_consistency(self, rows, cols):
        o = make_ordering("pseudo-hilbert", rows, cols)
        np.testing.assert_array_equal(o.perm[o.rank], np.arange(rows * cols))
        np.testing.assert_array_equal(o.rank[o.perm], np.arange(rows * cols))


def _traced_matrix(beam: str, channels: int) -> CSRMatrix:
    """Trace a small scan; grid is ``channels x channels`` (odd or even)."""
    if beam == "parallel":
        raw = build_projection_matrix(ParallelBeamGeometry(14, channels))
    else:
        raw = build_fan_projection_matrix(
            FanBeamGeometry(14, channels, source_distance=3.0 * channels)
        )
    return CSRMatrix.from_scipy(raw).sort_rows_by_index()


def _kernel_pair(A: CSRMatrix, kernel: str):
    """(forward, adjoint) callables of one kernel over the scan pair.

    Small partitions and a deliberately tiny buffer force the buffered
    kernel through its multi-stage path.
    """
    AT = scan_transpose(A)
    if kernel == "csr":
        return A.spmv, AT.spmv
    if kernel == "buffered":
        fwd = build_buffered(A, partition_size=8, buffer_bytes=64)
        adj = build_buffered(AT, partition_size=8, buffer_bytes=64)
        return fwd.spmv_vectorized, adj.spmv_vectorized
    fwd = build_ell(A, partition_size=8)
    adj = build_ell(AT, partition_size=8)
    return fwd.spmv, adj.spmv


class TestAdjointnessBattery:
    """⟨Ax, y⟩ == ⟨x, Aᵀy⟩ for every kernel × geometry × grid parity.

    The paper's gather-only adjoint argument (Section 3.2) must hold
    for all three kernel layouts, not just the default, on both beam
    geometries and on odd- and even-sized grids (odd sizes exercise
    the ragged last partition and non-power-of-two orderings).
    """

    @pytest.mark.parametrize("kernel", ["csr", "buffered", "ell"])
    @pytest.mark.parametrize("beam", ["parallel", "fan"])
    @pytest.mark.parametrize("channels", [15, 16], ids=["odd-grid", "even-grid"])
    def test_adjoint_inner_product(self, kernel, beam, channels):
        A = _traced_matrix(beam, channels)
        forward, adjoint = _kernel_pair(A, kernel)
        rng = np.random.default_rng(channels * 1000 + len(beam))
        x = rng.standard_normal(A.num_cols)
        y = rng.standard_normal(A.num_rows)
        lhs = float(np.asarray(forward(x), dtype=np.float64) @ y)
        rhs = float(x @ np.asarray(adjoint(y), dtype=np.float64))
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-10)


class TestTracedOperatorProperties:
    @given(angles=st.integers(4, 20), channels=st.sampled_from([8, 12, 16]))
    @settings(max_examples=10, deadline=None)
    def test_projection_is_nonnegative_operator(self, angles, channels):
        """A has non-negative entries: projecting a non-negative image
        yields a non-negative sinogram."""
        g = ParallelBeamGeometry(angles, channels)
        A = CSRMatrix.from_scipy(build_projection_matrix(g))
        x = np.abs(np.random.default_rng(0).standard_normal(A.num_cols)).astype(np.float32)
        assert (A.spmv(x) >= -1e-6).all()

    @given(angles=st.integers(4, 16))
    @settings(max_examples=8, deadline=None)
    def test_mass_preservation_per_angle(self, angles):
        """Summing a projection over channels integrates the image:
        every angle sees the same total mass (within discretization)."""
        g = ParallelBeamGeometry(angles, 16)
        A = CSRMatrix.from_scipy(build_projection_matrix(g))
        rng = np.random.default_rng(1)
        img = np.zeros((16, 16))
        img[4:12, 4:12] = rng.random((8, 8))  # interior support
        y = A.spmv(img.reshape(-1).astype(np.float32)).reshape(angles, 16)
        masses = y.sum(axis=1)
        assert masses.max() - masses.min() < 0.05 * masses.mean()


class TestConfigSpecRejection:
    """Malformed configuration specs fail loudly, with usable errors.

    Property-based: arbitrary junk strings must either parse to a
    valid value or raise ValueError/TypeError whose message names the
    offending field — never a silent fallback or an unrelated crash.
    """

    _DTYPE_OK = {"float32", "fp32", "single", "f32",
                 "float64", "fp64", "double", "f64"}
    _TUNE_OK = {"auto", "predict", "force"}

    @given(spec=st.text(min_size=0, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_parse_dtype_junk_strings(self, spec):
        from repro.precision import parse_dtype

        if spec.strip().lower() in self._DTYPE_OK:
            assert parse_dtype(spec) in ("float32", "float64")
        else:
            with pytest.raises(ValueError, match="dtype"):
                parse_dtype(spec)

    @given(spec=st.text(min_size=0, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_operator_config_tune_junk_strings(self, spec):
        from repro.core import OperatorConfig

        if spec.strip().lower() in self._TUNE_OK:
            assert OperatorConfig(tune=spec).tune in self._TUNE_OK
        else:
            with pytest.raises(ValueError, match="tune"):
                OperatorConfig(tune=spec)

    @given(spec=st.one_of(
        st.integers(min_value=-10, max_value=0),
        st.text(alphabet="abcxyz:!-", min_size=1, max_size=8),
    ))
    @settings(max_examples=60, deadline=None)
    def test_parse_workers_junk_specs(self, spec):
        from repro.parallel import parse_workers

        valid_words = {"auto", "serial", "thread", "process"}
        try:
            workers, mode = parse_workers(spec)
        except (ValueError, TypeError) as exc:
            assert "worker" in str(exc).lower()
        else:
            assert workers >= 1
            assert mode in ("serial", "thread", "process")
            text = str(spec).strip().lower()
            assert (
                text in valid_words
                or text == ""
                or text.split(":")[0] in valid_words
            )

    @given(dtype=st.sampled_from(sorted(_DTYPE_OK) + [None]),
           tune=st.sampled_from(sorted(_TUNE_OK) + [None]))
    @settings(max_examples=20, deadline=None)
    def test_valid_combinations_always_construct(self, dtype, tune):
        from repro.core import OperatorConfig

        config = OperatorConfig(dtype=dtype, tune=tune)
        assert config.dtype in (None, "float32", "float64")
        assert config.tune in (None, "auto", "predict", "force")
