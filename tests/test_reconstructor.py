"""End-to-end tests for the high-level reconstruction API."""

import numpy as np
import pytest

from repro.core import OperatorConfig, get_dataset, preprocess, reconstruct
from repro.utils import psnr


@pytest.fixture(scope="module")
def problem():
    """A scaled ADS1 problem with a preprocessed operator and noisy data."""
    spec = get_dataset("ADS1").scaled(0.25)  # 90 x 64
    g = spec.geometry()
    op, report = preprocess(g)
    sino, truth = spec.sinogram(op, incident_photons=1e6, seed=0)
    return g, op, report, sino, truth


class TestReconstruct:
    def test_cg_reconstructs_phantom(self, problem):
        g, op, _, sino, truth = problem
        res = reconstruct(sino, g, solver="cg", iterations=30, operator=op)
        assert res.image.shape == truth.shape
        assert psnr(res.image, truth) > 25.0

    def test_cg_beats_sirt_at_equal_iterations(self, problem):
        """Paper Fig. 8: CG converges much faster than SIRT."""
        g, op, _, sino, truth = problem
        res_cg = reconstruct(sino, g, solver="cg", iterations=15, operator=op)
        res_sirt = reconstruct(sino, g, solver="sirt", iterations=15, operator=op)
        assert res_cg.solve.residual_norms[-1] < res_sirt.solve.residual_norms[-1]
        assert psnr(res_cg.image, truth) > psnr(res_sirt.image, truth)

    def test_sgd_solver_runs(self, problem):
        g, op, _, sino, _ = problem
        res = reconstruct(
            sino, g, solver="sgd", iterations=10, operator=op, batch_fraction=0.2
        )
        assert res.solve.residual_norms[-1] < res.solve.residual_norms[0]

    def test_distributed_matches_serial(self, problem):
        g, op, _, sino, _ = problem
        serial = reconstruct(sino, g, solver="cg", iterations=8, operator=op)
        dist = reconstruct(sino, g, solver="cg", iterations=8, operator=op, num_ranks=4)
        assert dist.num_ranks == 4
        scale = np.abs(serial.image).max()
        np.testing.assert_allclose(dist.image, serial.image, atol=2e-2 * scale)

    def test_geometry_inferred_from_sinogram(self, problem):
        _, _, _, sino, _ = problem
        res = reconstruct(sino, solver="cg", iterations=2)
        assert res.image.shape == (sino.shape[1], sino.shape[1])

    def test_per_iteration_seconds(self, problem):
        g, op, _, sino, _ = problem
        res = reconstruct(sino, g, iterations=5, operator=op)
        assert res.per_iteration_seconds == pytest.approx(
            res.solve_seconds / res.solve.iterations
        )

    def test_kernel_configs_give_same_image(self, problem):
        g, _, _, sino, _ = problem
        images = []
        for kernel in ("csr", "buffered"):
            cfg = OperatorConfig(kernel=kernel, partition_size=32, buffer_bytes=2048)
            res = reconstruct(sino, g, iterations=10, config=cfg)
            images.append(res.image)
        scale = np.abs(images[0]).max()
        np.testing.assert_allclose(images[0], images[1], atol=5e-3 * scale)


class TestValidation:
    def test_non_2d_sinogram_rejected(self):
        with pytest.raises(ValueError):
            reconstruct(np.zeros(10))

    def test_shape_mismatch_rejected(self, problem):
        g, _, _, _, _ = problem
        with pytest.raises(ValueError):
            reconstruct(np.zeros((3, 3)), g)

    def test_unknown_solver_rejected(self, problem):
        g, op, _, sino, _ = problem
        with pytest.raises(ValueError):
            reconstruct(sino, g, solver="mlem", operator=op)

    def test_invalid_ranks_rejected(self, problem):
        g, op, _, sino, _ = problem
        with pytest.raises(ValueError):
            reconstruct(sino, g, operator=op, num_ranks=0)


class TestDirectAndMatrixSolvers:
    def test_fbp_through_reconstruct(self, problem):
        g, op, _, sino, truth = problem
        res = reconstruct(sino, g, solver="fbp", operator=op, window="hann")
        assert res.solver == "fbp"
        assert res.solve.iterations == 1
        assert res.solve.stop_reason == "direct solve"
        from repro.utils import psnr

        assert psnr(res.image, truth) > 14.0

    def test_icd_through_reconstruct(self, problem):
        g, op, _, sino, truth = problem
        res = reconstruct(sino, g, solver="icd", iterations=3, operator=op)
        assert res.solve.iterations == 3
        r = res.solve.residual_norms
        assert r[-1] < r[0]

    def test_fbp_rejects_distributed(self, problem):
        g, op, _, sino, _ = problem
        with pytest.raises(ValueError):
            reconstruct(sino, g, solver="fbp", operator=op, num_ranks=2)

    def test_cg_beats_fbp_on_noisy_data(self, problem):
        """The motivating comparison, now one flag apart."""
        from repro.utils import psnr

        g, op, _, _, truth = problem
        from repro.core import get_dataset

        spec = get_dataset("ADS1").scaled(0.25)
        noisy, _ = spec.sinogram(op, incident_photons=500, seed=3)
        res_fbp = reconstruct(noisy, g, solver="fbp", operator=op, window="hann")
        res_cg = reconstruct(noisy, g, solver="cg", iterations=8, operator=op)
        assert psnr(res_cg.image, truth) > psnr(res_fbp.image, truth)
