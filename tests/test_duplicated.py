"""Tests for the Trace-style domain-duplication baseline."""

import numpy as np
import pytest

from repro.dist import DistributedOperator, DuplicatedOperator, SimComm, decompose_both
from repro.sparse import scan_transpose


@pytest.fixture(scope="module")
def matrix(ordered_medium):
    return ordered_medium[0]


class TestDuplicatedOperator:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 8])
    def test_forward_matches_serial(self, matrix, ranks, rng):
        op = DuplicatedOperator(matrix, ranks)
        x = rng.random(matrix.num_cols).astype(np.float32)
        np.testing.assert_allclose(op.forward(x), matrix.spmv(x), rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("ranks", [1, 3, 8])
    def test_adjoint_matches_serial(self, matrix, ranks, rng):
        op = DuplicatedOperator(matrix, ranks)
        y = rng.random(matrix.num_rows).astype(np.float32)
        ref = scan_transpose(matrix).spmv(y)
        np.testing.assert_allclose(op.adjoint(y), ref, rtol=1e-4, atol=1e-4)

    def test_matches_memxct_distributed(self, ordered_medium, rng):
        """Both distributed schemes compute the same mathematics."""
        matrix, tomo, sino = ordered_medium
        dup = DuplicatedOperator(matrix, 4)
        td, sd = decompose_both(tomo, sino, 4)
        mem = DistributedOperator(matrix, td, sd)
        y = rng.random(matrix.num_rows).astype(np.float32)
        np.testing.assert_allclose(dup.adjoint(y), mem.adjoint(y), rtol=1e-3, atol=1e-3)

    def test_allreduce_traffic_is_n2_scale(self, matrix):
        """Duplication pays ~2 * 4 B * N^2 per rank per backprojection —
        independent of the matrix sparsity."""
        op = DuplicatedOperator(matrix, 8)
        comm = op.comm
        op.adjoint(np.zeros(matrix.num_rows, dtype=np.float32))
        logged = comm.log.off_diagonal_volume()
        assert logged == op.allreduce_bytes_per_backprojection()
        assert logged > 4 * matrix.num_cols  # full-domain scale

    def test_memxct_communicates_less_at_scale(self, ordered_medium):
        """Table 1's punchline on real structures: at P=16 the sparse
        both-domain exchange moves less data than the duplicated
        allreduce."""
        matrix, tomo, sino = ordered_medium
        ranks = 16
        dup = DuplicatedOperator(matrix, ranks)
        td, sd = decompose_both(tomo, sino, ranks)
        mem = DistributedOperator(matrix, td, sd)
        memxct_bytes = mem.communication_matrix().sum()
        trace_bytes = dup.allreduce_bytes_per_backprojection()
        assert memxct_bytes < trace_bytes

    def test_per_rank_memory_is_full_domain(self, matrix):
        op = DuplicatedOperator(matrix, 4)
        assert op.per_rank_memory_elements == matrix.num_cols

    def test_solver_compatible(self, matrix, rng):
        from repro.solvers import sirt

        op = DuplicatedOperator(matrix, 4)
        x_true = rng.random(matrix.num_cols)
        y = op.forward(x_true.astype(np.float32))
        res = sirt(op, y, num_iterations=20)
        assert res.residual_norms[-1] < 0.5 * res.residual_norms[0]

    def test_validation(self, matrix):
        with pytest.raises(ValueError):
            DuplicatedOperator(matrix, 0)
        with pytest.raises(ValueError):
            DuplicatedOperator(matrix, 4, comm=SimComm(3))
        op = DuplicatedOperator(matrix, 2)
        with pytest.raises(ValueError):
            op.forward(np.zeros(3))
        with pytest.raises(ValueError):
            op.adjoint(np.zeros(3))
