"""Tests for the streaming multi-slice pipeline.

Covers the conditioning stages individually (dark/flat, negative log,
ring suppression, center finding/correction), the stacked phantom
generators that feed them, and the streaming executor's contracts:
batched == looped volumes bitwise, chunking invariance, per-chunk
checkpoint/resume bit-exactness, and fingerprint validation.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.phantoms import (
    inject_center_shift,
    inject_rings,
    ring_gains,
    simulate_counts,
    stacked_shepp_logan,
    synthetic_darks_flats,
)
from repro.pipeline import (
    CenterCorrection,
    DarkFlatNormalize,
    NegativeLog,
    RingSuppression,
    StageContext,
    chunk_slices_for_budget,
    default_stages,
    demo_stack,
    find_center_shift,
    reconstruct_stack,
)
from repro.resilience import CheckpointError


@pytest.fixture(scope="module")
def geo():
    return ParallelBeamGeometry(48, 32)


@pytest.fixture(scope="module")
def operator(geo):
    op, _ = preprocess(
        geo, config=OperatorConfig(kernel="buffered", partition_size=32, buffer_bytes=4096)
    )
    return op


@pytest.fixture(scope="module")
def demo():
    return demo_stack(size=32, num_slices=6, num_angles=48, poisson=False)


class TestStackPhantoms:
    def test_stack_shape_and_variation(self):
        stack = stacked_shepp_logan(24, 5)
        assert stack.shape == (5, 24, 24)
        # Slices vary along the stack but share gross structure: the
        # shrunken end slice's support sits inside the middle slice's.
        assert not np.array_equal(stack[0], stack[4])
        end, mid = stack[0] != 0, stack[2] != 0
        assert (end & mid).sum() / end.sum() > 0.9

    def test_single_slice_stack(self):
        assert stacked_shepp_logan(16, 1).shape == (1, 16, 16)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="num_slices"):
            stacked_shepp_logan(16, 0)

    def test_darks_flats_shapes(self):
        darks, flats = synthetic_darks_flats(4, 20, num_frames=3)
        assert darks.shape == (3, 4, 20)
        assert flats.shape == (3, 4, 20)
        assert (flats.mean(axis=0) > darks.mean(axis=0)).all()

    def test_ring_gains_touch_only_bad_channels(self):
        gains = ring_gains(30, num_bad=4, seed=1)
        assert gains.shape == (30,)
        assert (gains != 1.0).sum() <= 4

    def test_inject_rings_validates_channels(self):
        with pytest.raises(ValueError, match="channels"):
            inject_rings(np.ones((2, 3, 10)), np.ones(9))

    def test_center_shift_roundtrip(self):
        rng = np.random.default_rng(0)
        sino = rng.random((3, 20, 40))
        shifted = inject_center_shift(sino, 2.0)
        back = inject_center_shift(shifted, -2.0)
        # Interior channels survive the round trip (edges clamp).
        assert np.allclose(back[..., 4:-4], sino[..., 4:-4], atol=1e-12)

    def test_simulate_counts_inverts_through_normalization(self):
        """dark/flat + neg-log over simulated counts recovers the
        scaled sinogram (noise-free)."""
        sino = np.abs(np.random.default_rng(1).random((2, 12, 16)))
        darks, flats = synthetic_darks_flats(2, 16, noise=0.0)
        raw, scale = simulate_counts(sino, darks, flats, poisson=False)
        ctx = StageContext()
        ctx.info["slice_offset"] = 0
        chunk = DarkFlatNormalize(darks, flats)(raw, ctx)
        recovered = NegativeLog()(chunk, ctx)
        assert np.allclose(recovered, scale * sino, atol=1e-10)


class TestCenterFinding:
    @pytest.mark.parametrize("true_shift", [-2.0, -0.75, 0.0, 1.25, 2.0])
    def test_com_recovers_shift(self, demo, true_shift):
        # Shifts stay a few channels inside the 32-channel detector;
        # larger ones clamp at the edge and bias any estimator.
        sino = inject_center_shift(demo.sinograms[2], true_shift)
        found = find_center_shift(sino, demo.geometry.angles(), method="com")
        assert abs(found - true_shift) <= 0.25

    @pytest.mark.parametrize("true_shift", [-2.0, 0.0, 1.5])
    def test_correlation_recovers_shift(self, demo, true_shift):
        sino = inject_center_shift(demo.sinograms[2], true_shift)
        found = find_center_shift(sino, method="correlation")
        assert abs(found - true_shift) <= 0.75

    def test_default_angles_match_geometry(self, demo):
        sino = demo.sinograms[0]
        assert find_center_shift(sino) == pytest.approx(
            find_center_shift(sino, demo.geometry.angles())
        )

    def test_rejects_unknown_method(self, demo):
        with pytest.raises(ValueError, match="method"):
            find_center_shift(demo.sinograms[0], method="fft")

    def test_rejects_empty_sinogram(self):
        with pytest.raises(ValueError, match="non-empty"):
            find_center_shift(np.zeros((10, 16)))

    def test_rejects_angle_mismatch(self, demo):
        with pytest.raises(ValueError, match="angles"):
            find_center_shift(demo.sinograms[0], np.zeros(3))


class TestStages:
    def test_dark_flat_rejects_inverted_calibration(self):
        stage = DarkFlatNormalize(darks=np.full(8, 100.0), flats=np.full(8, 50.0))
        with pytest.raises(ValueError, match="flat-field"):
            stage(np.ones((1, 4, 8)), StageContext())

    def test_neg_log_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            NegativeLog()(np.zeros((1, 2, 4)), StageContext())

    def test_stage_rejects_2d_input(self):
        with pytest.raises(ValueError, match="chunk"):
            NegativeLog()(np.ones((4, 8)), StageContext())

    def test_ring_suppression_removes_stripes(self, demo):
        clean = demo.sinograms[:1]
        stripe = np.zeros(clean.shape[-1])
        stripe[10] = 0.4
        striped = clean + stripe[None, None, :]
        out = RingSuppression(window=5)(striped, StageContext())
        # The stripe residual is mostly gone; clean columns untouched-ish.
        residual = np.abs(out - clean).mean()
        assert residual < 0.1 * 0.4

    def test_ring_suppression_window_validation(self):
        with pytest.raises(ValueError, match="odd"):
            RingSuppression(window=4)
        with pytest.raises(ValueError, match="odd"):
            RingSuppression(window=1)

    def test_center_correction_undoes_shift(self, demo):
        shifted = inject_center_shift(demo.sinograms, 2.0)
        ctx = StageContext(angles=demo.geometry.angles())
        out = CenterCorrection()(shifted, ctx)
        assert abs(ctx.info["center_shift"] - 2.0) <= 0.2
        interior = (slice(None), slice(None), slice(6, -6))
        assert np.abs(out[interior] - demo.sinograms[interior]).mean() < 0.05

    def test_center_correction_estimate_reused_across_chunks(self, demo):
        ctx = StageContext(angles=demo.geometry.angles())
        stage = CenterCorrection()
        stage(inject_center_shift(demo.sinograms[:2], 1.5), ctx)
        first = ctx.info["center_shift"]
        # Second chunk must reuse, not re-estimate (different slices
        # would give a slightly different value).
        stage(inject_center_shift(demo.sinograms[2:], 1.5), ctx)
        assert ctx.info["center_shift"] == first

    def test_explicit_shift_skips_estimation(self, demo):
        ctx = StageContext()
        CenterCorrection(shift=1.0)(demo.sinograms[:1], ctx)
        assert ctx.info["center_shift"] == 1.0

    def test_stage_times_accumulate(self, demo):
        ctx = StageContext()
        stage = NegativeLog()
        stage(np.full((1, 4, 8), 0.5), ctx)
        once = ctx.stage_times["neg_log"]
        stage(np.full((1, 4, 8), 0.5), ctx)
        assert ctx.stage_times["neg_log"] > once

    def test_default_stages_composition(self):
        darks, flats = synthetic_darks_flats(2, 16)
        names = [s.name for s in default_stages(darks, flats)]
        assert names == ["dark_flat", "neg_log", "ring_suppress", "center"]
        assert [s.name for s in default_stages()] == ["ring_suppress", "center"]
        assert default_stages(ring_window=None, center_method=None) == []
        with pytest.raises(ValueError, match="both"):
            default_stages(darks=darks)


class TestExecutor:
    def test_end_to_end_demo(self, demo):
        result = reconstruct_stack(
            demo.raw,
            demo.geometry,
            darks=demo.darks,
            flats=demo.flats,
            solver="cg",
            iterations=15,
            operator=demo.operator,
        )
        assert result.volume.shape == (6, 32, 32)
        truth = demo.attenuation_scale * demo.truth
        for k in range(6):
            corr = np.corrcoef(result.volume[k].ravel(), truth[k].ravel())[0, 1]
            assert corr > 0.9

    def test_batched_equals_looped(self, demo):
        kwargs = dict(
            darks=demo.darks,
            flats=demo.flats,
            solver="cg",
            iterations=6,
            chunk_slices=2,
            operator=demo.operator,
        )
        batched = reconstruct_stack(demo.raw, demo.geometry, batch=True, **kwargs)
        looped = reconstruct_stack(demo.raw, demo.geometry, batch=False, **kwargs)
        assert np.array_equal(batched.volume, looped.volume)

    @pytest.mark.parametrize("solver", ["sirt", "mlem"])
    def test_batched_equals_looped_other_solvers(self, demo, solver):
        kwargs = dict(
            darks=demo.darks,
            flats=demo.flats,
            solver=solver,
            iterations=4,
            operator=demo.operator,
        )
        batched = reconstruct_stack(demo.raw, demo.geometry, batch=True, **kwargs)
        looped = reconstruct_stack(demo.raw, demo.geometry, batch=False, **kwargs)
        assert np.array_equal(batched.volume, looped.volume)

    def test_chunking_invariance(self, demo):
        """Without cross-chunk stages, the volume must not depend on
        the chunk size (per-column solves are independent)."""
        kwargs = dict(
            stages=[],
            solver="cg",
            iterations=6,
            operator=demo.operator,
        )
        whole = reconstruct_stack(demo.sinograms, demo.geometry, **kwargs)
        chunked = reconstruct_stack(
            demo.sinograms, demo.geometry, chunk_slices=2, **kwargs
        )
        uneven = reconstruct_stack(
            demo.sinograms, demo.geometry, chunk_slices=4, **kwargs
        )
        assert np.array_equal(whole.volume, chunked.volume)
        assert np.array_equal(whole.volume, uneven.volume)

    def test_stage_times_in_extra(self, demo):
        result = reconstruct_stack(
            demo.raw,
            demo.geometry,
            darks=demo.darks,
            flats=demo.flats,
            iterations=2,
            operator=demo.operator,
        )
        times = result.extra["stage_times"]
        assert set(times) == {"dark_flat", "neg_log", "ring_suppress", "center", "solve"}
        assert all(v >= 0 for v in times.values())
        assert times["solve"] == result.solve_seconds

    def test_pipeline_counters(self, demo):
        with obs.capture() as cap:
            reconstruct_stack(
                demo.sinograms,
                demo.geometry,
                stages=[],
                iterations=2,
                chunk_slices=2,
                operator=demo.operator,
            )
        assert cap.total(obs.PIPELINE_SLICES) == 6
        assert cap.total(obs.PIPELINE_CHUNKS) == 3
        assert cap.find_spans("pipeline.run")
        assert len(cap.find_spans("pipeline.chunk")) == 3

    def test_memory_budget_chunking(self, demo):
        op = demo.operator
        num_slices = demo.sinograms.shape[0]
        # Budget model: per-slice solver vectors + the raw chunk row,
        # plus the fixed in-memory output volume carved out up front.
        per_slice = 8 * (4 * op.num_rays + 4 * op.num_pixels) + 8 * op.num_rays
        volume = 8 * op.num_pixels * num_slices
        result = reconstruct_stack(
            demo.sinograms,
            demo.geometry,
            stages=[],
            iterations=1,
            memory_budget_bytes=volume + 3 * per_slice,
            operator=op,
        )
        assert len(result.chunks) == 2
        assert result.chunks[0]["stop"] - result.chunks[0]["start"] == 3

    def test_budget_floor_is_one_slice(self):
        assert chunk_slices_for_budget(1, 1000, 1000, 8) == 1
        assert chunk_slices_for_budget(10**12, 1000, 1000, 8) == 8
        with pytest.raises(ValueError, match="budget"):
            chunk_slices_for_budget(0, 1000, 1000, 8)

    def test_budget_is_dtype_aware(self):
        # fp32 solver vectors are half the size, so the same budget
        # fits at least as many (here: twice as many) slices.
        budget = 10 * 8 * (4 * 1000 + 4 * 1000)
        fp64 = chunk_slices_for_budget(
            budget, 1000, 1000, 1000, itemsize=8, volume_in_memory=False
        )
        fp32 = chunk_slices_for_budget(
            budget, 1000, 1000, 1000, itemsize=4, volume_in_memory=False
        )
        assert fp32 > fp64

    def test_budget_accounts_for_volume_and_prefetch(self):
        budget = 100 * 8 * (4 * 1000 + 4 * 1000)
        streamed = chunk_slices_for_budget(
            budget, 1000, 1000, 10**6, volume_in_memory=False
        )
        resident = chunk_slices_for_budget(
            budget, 1000, 1000, 10**6, volume_in_memory=True
        )
        # A million-slice in-memory volume eats the whole budget; the
        # streamed path still gets real chunks out of it.
        assert resident == 1
        assert streamed > 1
        # Each prefetched chunk parks another raw copy in the queue.
        eager = chunk_slices_for_budget(
            budget, 1000, 1000, 10**6, volume_in_memory=False, prefetch=4
        )
        assert eager < streamed

    def test_rejects_both_chunking_knobs(self, demo):
        with pytest.raises(ValueError, match="not both"):
            reconstruct_stack(
                demo.sinograms,
                demo.geometry,
                chunk_slices=2,
                memory_budget_bytes=1 << 20,
                operator=demo.operator,
            )

    def test_rejects_bad_inputs(self, demo):
        with pytest.raises(ValueError, match="slices, angles, channels"):
            reconstruct_stack(demo.sinograms[0], demo.geometry)
        with pytest.raises(ValueError, match="solver"):
            reconstruct_stack(demo.sinograms, demo.geometry, solver="fbp")
        with pytest.raises(ValueError, match="checkpoint"):
            reconstruct_stack(demo.sinograms, demo.geometry, resume=True)


class TestCheckpointResume:
    def _run(self, demo, tmp_path, **kwargs):
        return reconstruct_stack(
            demo.sinograms,
            demo.geometry,
            stages=[],
            solver="cg",
            iterations=5,
            chunk_slices=2,
            operator=demo.operator,
            **kwargs,
        )

    def test_kill_and_resume_is_bit_exact(self, demo, tmp_path):
        path = tmp_path / "stack.npz"
        partial = self._run(demo, tmp_path, checkpoint=path, max_chunks=2)
        assert partial.extra["stopped_early"]
        assert partial.extra["remaining_slices"] == 2
        resumed = self._run(demo, tmp_path, checkpoint=path, resume=True)
        assert resumed.extra["resumed_slices"] == 4
        assert len(resumed.chunks) == 1  # only the remaining chunk ran
        full = self._run(demo, tmp_path)
        assert np.array_equal(resumed.volume, full.volume)

    def test_resume_restores_center_estimate(self, tmp_path):
        """The center found before the kill is reused after resume —
        estimating on a different chunk would change the volume."""
        d = demo_stack(size=32, num_slices=4, num_angles=48, center_shift=1.2, poisson=False)
        path = tmp_path / "c.npz"
        kwargs = dict(
            darks=d.darks,
            flats=d.flats,
            solver="cg",
            iterations=4,
            chunk_slices=1,
            operator=d.operator,
        )
        self._noop = reconstruct_stack(
            d.raw, d.geometry, checkpoint=path, max_chunks=1, **kwargs
        )
        resumed = reconstruct_stack(
            d.raw, d.geometry, checkpoint=path, resume=True, **kwargs
        )
        full = reconstruct_stack(d.raw, d.geometry, **kwargs)
        assert resumed.extra["center_shift"] == full.extra["center_shift"]
        assert np.array_equal(resumed.volume, full.volume)

    def test_fingerprint_mismatch_rejected(self, demo, tmp_path):
        path = tmp_path / "fp.npz"
        self._run(demo, tmp_path, checkpoint=path, max_chunks=1)
        other = demo.sinograms + 1e-3
        with pytest.raises(CheckpointError, match="fingerprint"):
            reconstruct_stack(
                other,
                demo.geometry,
                stages=[],
                solver="cg",
                iterations=5,
                chunk_slices=2,
                operator=demo.operator,
                checkpoint=path,
                resume=True,
            )

    def test_solver_change_rejected(self, demo, tmp_path):
        path = tmp_path / "sv.npz"
        self._run(demo, tmp_path, checkpoint=path, max_chunks=1)
        with pytest.raises(CheckpointError, match="fingerprint"):
            reconstruct_stack(
                demo.sinograms,
                demo.geometry,
                stages=[],
                solver="sirt",
                iterations=5,
                chunk_slices=2,
                operator=demo.operator,
                checkpoint=path,
                resume=True,
            )

    def test_missing_checkpoint_rejected(self, demo, tmp_path):
        with pytest.raises(CheckpointError):
            self._run(demo, tmp_path, checkpoint=tmp_path / "absent.npz", resume=True)

    def test_tolerance_change_rejected(self, demo, tmp_path):
        # Tolerance changes the per-slice stopping point, hence the
        # volume; it must be bound into the fingerprint.
        path = tmp_path / "tol.npz"
        self._run(demo, tmp_path, checkpoint=path, max_chunks=1, tolerance=0.0)
        with pytest.raises(CheckpointError, match="fingerprint"):
            self._run(demo, tmp_path, checkpoint=path, resume=True, tolerance=1e-3)

    def test_iteration_change_rejected(self, demo, tmp_path):
        path = tmp_path / "it.npz"
        self._run(demo, tmp_path, checkpoint=path, max_chunks=1)
        with pytest.raises(CheckpointError, match="fingerprint"):
            reconstruct_stack(
                demo.sinograms,
                demo.geometry,
                stages=[],
                solver="cg",
                iterations=6,
                chunk_slices=2,
                operator=demo.operator,
                checkpoint=path,
                resume=True,
            )

    def test_stage_chain_change_rejected(self, demo, tmp_path):
        # The old fingerprint ignored conditioning entirely: a resume
        # with a different ring window (or any stage change) silently
        # blended two pipelines into one volume.
        path = tmp_path / "st.npz"
        kwargs = dict(
            solver="cg", iterations=5, chunk_slices=2, operator=demo.operator
        )
        reconstruct_stack(
            demo.sinograms,
            demo.geometry,
            stages=[RingSuppression(window=5)],
            checkpoint=path,
            max_chunks=1,
            **kwargs,
        )
        with pytest.raises(CheckpointError, match="fingerprint"):
            reconstruct_stack(
                demo.sinograms,
                demo.geometry,
                stages=[RingSuppression(window=7)],
                checkpoint=path,
                resume=True,
                **kwargs,
            )

    def test_solver_kwargs_change_rejected(self, demo, tmp_path):
        path = tmp_path / "kw.npz"
        kwargs = dict(
            stages=[], solver="sirt", iterations=5, chunk_slices=2,
            operator=demo.operator, checkpoint=path,
        )
        reconstruct_stack(demo.sinograms, demo.geometry, max_chunks=1, **kwargs)
        with pytest.raises(CheckpointError, match="fingerprint"):
            reconstruct_stack(
                demo.sinograms, demo.geometry, resume=True, relaxation=0.5, **kwargs
            )

    def test_calibration_change_rejected(self, tmp_path):
        d = demo_stack(size=32, num_slices=4, num_angles=48, poisson=False)
        path = tmp_path / "cal.npz"
        kwargs = dict(solver="cg", iterations=4, chunk_slices=2, operator=d.operator)
        reconstruct_stack(
            d.raw, d.geometry, darks=d.darks, flats=d.flats,
            checkpoint=path, max_chunks=1, **kwargs,
        )
        with pytest.raises(CheckpointError, match="fingerprint"):
            reconstruct_stack(
                d.raw, d.geometry, darks=d.darks * 1.01, flats=d.flats,
                checkpoint=path, resume=True, **kwargs,
            )

    def test_non_pipeline_checkpoint_rejected(self, demo, tmp_path):
        from repro.resilience import CheckpointManager, SolverCheckpoint

        path = tmp_path / "cg.npz"
        CheckpointManager(path).save(
            SolverCheckpoint(solver="cg", iteration=3, arrays={"x": np.zeros(4)})
        )
        with pytest.raises(CheckpointError, match="pipeline"):
            self._run(demo, tmp_path, checkpoint=path, resume=True)


class TestOperatorOverrides:
    def test_dtype_mismatch_with_operator_raises(self, demo):
        # The old behaviour silently ignored dtype= and returned a
        # volume at the operator's precision, not the requested one.
        with pytest.raises(ValueError, match="dtype"):
            reconstruct_stack(
                demo.sinograms,
                demo.geometry,
                stages=[],
                iterations=2,
                operator=demo.operator,
                dtype="float32",
            )

    def test_matching_dtype_with_operator_accepted(self, demo):
        from repro.core import OperatorConfig, preprocess

        op32, _ = preprocess(demo.geometry, config=OperatorConfig(dtype="float32"))
        result = reconstruct_stack(
            demo.sinograms,
            demo.geometry,
            stages=[],
            iterations=2,
            operator=op32,
            dtype="fp32",  # alias of the operator's own precision
        )
        assert result.volume.shape == demo.truth.shape

    def test_tune_with_operator_warns(self, demo):
        with pytest.warns(UserWarning, match="prebuilt operator"):
            reconstruct_stack(
                demo.sinograms,
                demo.geometry,
                stages=[],
                iterations=2,
                operator=demo.operator,
                tune="auto",
            )


class TestPipelineCLI:
    def test_demo_run(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "pipeline", "run", "--demo", "--slices", "4", "--size", "32",
                "--iterations", "4", "--cache", "off", "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4/4 slices" in out
        assert "Per-stage wall time" in out
        assert "solve" in out
        assert (tmp_path / "volume.npz").exists()
        volume = np.load(tmp_path / "volume.npz")["volume"]
        assert volume.shape == (4, 32, 32)

    def test_input_file_run(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        rng = np.random.default_rng(0)
        np.savez(tmp_path / "in.npz", stack=np.abs(rng.random((3, 32, 24))))
        code = main(
            [
                "pipeline", "run", "--input", str(tmp_path / "in.npz"),
                "--iterations", "3", "--cache", "off",
            ]
        )
        assert code == 0
        assert "3/3 slices" in capsys.readouterr().out

    def test_missing_input_errors(self, capsys):
        from repro.cli import main

        assert main(["pipeline", "run", "--cache", "off"]) == 2
        assert "provide --input" in capsys.readouterr().err

    def test_make_demo_then_streamed_run(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.dataio import load_volume

        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "pipeline", "make-demo", "--slices", "4", "--size", "32",
                "--shard-slices", "2", "--cache", "off", "-o", "stack",
            ]
        )
        assert code == 0
        assert "wrote demo stack" in capsys.readouterr().out
        code = main(
            [
                "pipeline", "run", "--input", "stack", "--iterations", "3",
                "--chunk-slices", "2", "--prefetch", "2", "--cache", "off",
                "-o", "out",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4/4 slices" in out
        assert "streamed volume finalized" in out
        assert load_volume(tmp_path / "out").shape == (4, 32, 32)
