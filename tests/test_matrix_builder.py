"""Tests for forward-projection matrix assembly."""

import numpy as np
import pytest

from repro.geometry import ParallelBeamGeometry
from repro.trace import build_projection_matrix, projection_matrix_stats, trace_angle


class TestBuildProjectionMatrix:
    def test_shape(self, small_geometry):
        A = build_projection_matrix(small_geometry)
        assert A.shape == (small_geometry.num_rays, small_geometry.grid.num_pixels)

    def test_matches_traced_segments(self):
        g = ParallelBeamGeometry(10, 8)
        A = build_projection_matrix(g)
        dense = A.toarray()
        for ai in range(g.num_angles):
            segs = trace_angle(g, ai)
            ref = np.zeros_like(dense)
            np.add.at(ref, (segs.ray_index, segs.pixel_index), segs.length)
            rows = slice(ai * 8, (ai + 1) * 8)
            np.testing.assert_allclose(dense[rows], ref[rows], atol=1e-6)

    def test_forward_projection_of_point(self):
        """A single bright pixel projects to a sinusoid: exactly one
        response band per angle."""
        g = ParallelBeamGeometry(16, 12)
        A = build_projection_matrix(g)
        x = np.zeros(144, dtype=np.float32)
        x[6 * 12 + 3] = 1.0
        sino = (A @ x).reshape(16, 12)
        hits_per_angle = (sino > 0).sum(axis=1)
        assert (hits_per_angle >= 1).all()
        assert (hits_per_angle <= 3).all()  # a point spans <= 2-3 channels

    def test_dtype(self):
        g = ParallelBeamGeometry(6, 6)
        assert build_projection_matrix(g).dtype == np.float32
        assert build_projection_matrix(g, dtype=np.float64).dtype == np.float64

    def test_nonnegative_values(self, small_matrix):
        assert (small_matrix.val >= 0).all()


class TestStats:
    def test_stats_fields(self, small_geometry):
        A = build_projection_matrix(small_geometry)
        st = projection_matrix_stats(A)
        assert st["rows"] == small_geometry.num_rays
        assert st["cols"] == small_geometry.grid.num_pixels
        assert st["nnz"] == A.nnz
        assert 0 < st["row_nnz_mean"] <= st["row_nnz_max"]

    def test_chord_constant_is_scale_invariant(self):
        """nnz ~ c * M * N^2 with the same c across scales — the law the
        dataset footprint extrapolation relies on (DESIGN.md)."""
        constants = []
        for m, n in [(24, 16), (48, 32), (96, 64)]:
            A = build_projection_matrix(ParallelBeamGeometry(m, n))
            constants.append(projection_matrix_stats(A)["chord_constant"])
        assert max(constants) - min(constants) < 0.08
        assert 1.0 < constants[-1] < 1.35  # ~4/pi average chord factor

    def test_max_row_nnz_bounded(self, small_geometry):
        """A ray crosses at most 2N-1 pixels of an N x N grid."""
        A = build_projection_matrix(small_geometry)
        st = projection_matrix_stats(A)
        assert st["row_nnz_max"] <= 2 * small_geometry.grid.n - 1
