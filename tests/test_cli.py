"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        p = build_parser()
        assert p.parse_args(["info"]).command == "info"
        args = p.parse_args(["preprocess", "--angles", "10", "--channels", "8"])
        assert args.angles == 10 and args.kernel == "buffered"

    def test_invalid_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reconstruct", "--solver", "mlem"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ADS1" in out and "RDS2" in out
        assert "Theta" in out

    def test_preprocess_and_reconstruct_from_file(self, tmp_path, capsys):
        op_file = tmp_path / "op.npz"
        assert main([
            "preprocess", "--angles", "30", "--channels", "24",
            "-o", str(op_file),
        ]) == 0
        assert op_file.exists()

        # Build a sinogram file matching the operator's geometry.
        from repro.io import load_operator
        from repro.phantoms import shepp_logan

        operator = load_operator(op_file)
        sino = operator.project_image(shepp_logan(24))
        sino_file = tmp_path / "sino.npz"
        np.savez(sino_file, sinogram=sino)

        out_file = tmp_path / "recon.npz"
        assert main([
            "reconstruct", "--sinogram", str(sino_file),
            "--operator", str(op_file), "--iterations", "5",
            "-o", str(out_file),
        ]) == 0
        with np.load(out_file) as data:
            assert data["reconstruction"].shape == (24, 24)

    def test_reconstruct_demo(self, tmp_path, capsys):
        out_file = tmp_path / "demo.npz"
        assert main([
            "reconstruct", "--demo", "ADS1", "--scale", "0.0625",
            "--iterations", "3", "-o", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out
        assert out_file.exists()

    def test_reconstruct_requires_input(self, capsys):
        assert main(["reconstruct"]) == 2

    def test_bench(self, capsys):
        assert main(["bench", "--dataset", "ADS1", "--scale", "0.0625"]) == 0
        out = capsys.readouterr().out
        assert "multi-stage buffered" in out

    def test_scale_command(self, capsys):
        assert main([
            "scale", "--dataset", "RDS1", "--machine", "theta",
            "--mode", "strong", "--nodes-start", "32", "--steps", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "strong scaling" in out and "A_p" in out

    def test_scale_weak_mode(self, capsys):
        assert main([
            "scale", "--dataset", "ADS2", "--machine", "bluewaters",
            "--mode", "weak", "--steps", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "weak scaling" in out


class TestPlanCacheCLI:
    """The `--cache` flag and the `cache` maintenance subcommand.

    The autouse conftest fixture points REPRO_CACHE_DIR at a per-test
    temp dir, so `--cache auto` (the default) is hermetic here.
    """

    ARGS = ["preprocess", "--angles", "24", "--channels", "16"]

    def test_preprocess_miss_then_hit(self, tmp_path, capsys):
        assert main(self.ARGS + ["-o", str(tmp_path / "a.npz")]) == 0
        first = capsys.readouterr().out
        assert "plan cache miss" in first
        assert "stored plan for reuse" in first

        assert main(self.ARGS + ["-o", str(tmp_path / "b.npz")]) == 0
        second = capsys.readouterr().out
        assert "plan cache hit" in second
        assert "skipped ordering/tracing/transpose/partitioning" in second

    def test_cache_off_stays_silent(self, tmp_path, capsys):
        assert main(
            self.ARGS + ["--cache", "off", "-o", str(tmp_path / "a.npz")]
        ) == 0
        out = capsys.readouterr().out
        assert "plan cache" not in out
        assert main(
            self.ARGS + ["--cache", "off", "-o", str(tmp_path / "b.npz")]
        ) == 0
        assert "plan cache hit" not in capsys.readouterr().out

    def test_explicit_cache_dir(self, tmp_path, capsys):
        cachedir = tmp_path / "plans"
        argv = self.ARGS + ["--cache", str(cachedir), "-o", str(tmp_path / "a.npz")]
        assert main(argv) == 0
        assert "plan cache miss" in capsys.readouterr().out
        assert list(cachedir.glob("*.npz"))
        argv[-1] = str(tmp_path / "b.npz")
        assert main(argv) == 0
        assert "plan cache hit" in capsys.readouterr().out

    def test_reconstruct_demo_uses_cache(self, tmp_path, capsys):
        argv = [
            "reconstruct", "--demo", "ADS1", "--scale", "0.0625",
            "--iterations", "2", "-o", str(tmp_path / "r.npz"),
        ]
        assert main(argv) == 0
        assert "plan cache miss" in capsys.readouterr().out
        assert main(argv) == 0
        assert "plan cache hit" in capsys.readouterr().out

    def test_cache_list_info_clear(self, tmp_path, capsys):
        assert main(["cache", "list"]) == 0
        assert "is empty" in capsys.readouterr().out

        assert main(self.ARGS + ["-o", str(tmp_path / "a.npz")]) == 0
        capsys.readouterr()

        assert main(["cache", "list"]) == 0
        out = capsys.readouterr().out
        assert "24x16" in out and "buffered" in out
        assert "1 entries" in out

        key = [
            line.split()[0] for line in out.splitlines() if "24x16" in line
        ][0]
        assert main(["cache", "info", key]) == 0
        info = capsys.readouterr().out
        assert "num_angles" in info and key in info

        assert main(["cache", "info"]) == 2  # key required
        assert main(["cache", "info", "feedface"]) == 1  # no match

        assert main(["cache", "clear"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "list"]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_cache_prune_respects_cap(self, tmp_path, capsys):
        assert main(self.ARGS + ["-o", str(tmp_path / "a.npz")]) == 0
        assert main([
            "preprocess", "--angles", "26", "--channels", "16",
            "-o", str(tmp_path / "b.npz"),
        ]) == 0
        capsys.readouterr()
        # A tiny cap keeps only the most recent entry.
        assert main(["cache", "prune", "--max-mb", "0.001"]) == 0
        assert "evicted 1 entries" in capsys.readouterr().out
        assert main(["cache", "list"]) == 0
        assert "1 entries" in capsys.readouterr().out
