"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        p = build_parser()
        assert p.parse_args(["info"]).command == "info"
        args = p.parse_args(["preprocess", "--angles", "10", "--channels", "8"])
        assert args.angles == 10 and args.kernel == "buffered"

    def test_invalid_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reconstruct", "--solver", "mlem"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ADS1" in out and "RDS2" in out
        assert "Theta" in out

    def test_preprocess_and_reconstruct_from_file(self, tmp_path, capsys):
        op_file = tmp_path / "op.npz"
        assert main([
            "preprocess", "--angles", "30", "--channels", "24",
            "-o", str(op_file),
        ]) == 0
        assert op_file.exists()

        # Build a sinogram file matching the operator's geometry.
        from repro.io import load_operator
        from repro.phantoms import shepp_logan

        operator = load_operator(op_file)
        sino = operator.project_image(shepp_logan(24))
        sino_file = tmp_path / "sino.npz"
        np.savez(sino_file, sinogram=sino)

        out_file = tmp_path / "recon.npz"
        assert main([
            "reconstruct", "--sinogram", str(sino_file),
            "--operator", str(op_file), "--iterations", "5",
            "-o", str(out_file),
        ]) == 0
        with np.load(out_file) as data:
            assert data["reconstruction"].shape == (24, 24)

    def test_reconstruct_demo(self, tmp_path, capsys):
        out_file = tmp_path / "demo.npz"
        assert main([
            "reconstruct", "--demo", "ADS1", "--scale", "0.0625",
            "--iterations", "3", "-o", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out
        assert out_file.exists()

    def test_reconstruct_requires_input(self, capsys):
        assert main(["reconstruct"]) == 2

    def test_bench(self, capsys):
        assert main(["bench", "--dataset", "ADS1", "--scale", "0.0625"]) == 0
        out = capsys.readouterr().out
        assert "multi-stage buffered" in out

    def test_scale_command(self, capsys):
        assert main([
            "scale", "--dataset", "RDS1", "--machine", "theta",
            "--mode", "strong", "--nodes-start", "32", "--steps", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "strong scaling" in out and "A_p" in out

    def test_scale_weak_mode(self, capsys):
        assert main([
            "scale", "--dataset", "ADS2", "--machine", "bluewaters",
            "--mode", "weak", "--steps", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "weak scaling" in out
