"""Tests for metrics and table formatting."""

import numpy as np
import pytest

from repro.utils import (
    REGULAR_BYTES_BUFFERED,
    REGULAR_BYTES_CSR,
    bandwidth_utilization_gb,
    format_bytes,
    format_seconds,
    gflops,
    psnr,
    render_table,
    rmse,
)


class TestMetrics:
    def test_gflops_definition(self):
        # 2 FLOPs per nonzero (paper Section 4.2).
        assert gflops(nnz=5 * 10**8, seconds=1.0) == pytest.approx(1.0)

    def test_bandwidth_definition(self):
        assert bandwidth_utilization_gb(10**9, 8.0, 1.0) == pytest.approx(8.0)

    def test_bytes_constants(self):
        assert REGULAR_BYTES_CSR == 8.0
        assert REGULAR_BYTES_BUFFERED == 6.0
        # the paper's 25 % saving
        assert 1 - REGULAR_BYTES_BUFFERED / REGULAR_BYTES_CSR == pytest.approx(0.25)

    def test_nonpositive_time_rejected(self):
        with pytest.raises(ValueError):
            gflops(10, 0.0)
        with pytest.raises(ValueError):
            bandwidth_utilization_gb(10, 8.0, -1.0)

    def test_rmse(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 2.0)
        assert rmse(a, b) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_psnr(self):
        ref = np.zeros((8, 8))
        ref[0, 0] = 1.0
        noisy = ref + 0.01
        assert 35 < psnr(noisy, ref) < 45
        assert psnr(ref, ref) == np.inf
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((2, 2)))  # zero dynamic range


class TestFormatting:
    def test_render_table_alignment(self):
        out = render_table(["col", "x"], [["a", 1], ["bbbb", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1] and "x" in lines[1]
        assert len({len(l) for l in lines[2:]}) <= 2  # consistent width

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2 KiB"
        assert "MiB" in format_bytes(215e6)
        assert "TiB" in format_bytes(5.1e12)

    def test_format_seconds(self):
        assert "ms" in format_seconds(0.118)
        assert format_seconds(63.3) == "63.3 s"
        assert format_seconds(2800).endswith(" m")
        assert format_seconds(6000).endswith(" h")
        assert "d" in format_seconds(1.44 * 86400)
        with pytest.raises(ValueError):
            format_seconds(-1)
