"""Tests for the DomainOrdering abstraction over layout schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import ORDERING_NAMES, make_ordering


class TestMakeOrdering:
    @pytest.mark.parametrize("name", ORDERING_NAMES)
    @pytest.mark.parametrize("rows,cols", [(8, 8), (13, 11), (1, 7), (20, 3)])
    def test_is_permutation(self, name, rows, cols):
        o = make_ordering(name, rows, cols)
        assert o.name == name
        assert np.unique(o.perm).shape[0] == rows * cols
        np.testing.assert_array_equal(o.rank[o.perm], np.arange(rows * cols))

    @pytest.mark.parametrize("name", ORDERING_NAMES)
    def test_roundtrip(self, name):
        o = make_ordering(name, 12, 10)
        img = np.arange(120, dtype=np.float64).reshape(12, 10)
        np.testing.assert_array_equal(o.from_ordered(o.to_ordered(img)), img)

    def test_row_major_is_identity(self):
        o = make_ordering("row-major", 6, 5)
        np.testing.assert_array_equal(o.perm, np.arange(30))

    def test_hilbert_matches_curve_on_square(self):
        """On a power-of-two square the sorted-code construction must
        reproduce the canonical Hilbert visit order."""
        from repro.ordering import hilbert_curve

        o = make_ordering("hilbert", 8, 8)
        coords = hilbert_curve(3)
        expected = coords[:, 1] * 8 + coords[:, 0]
        np.testing.assert_array_equal(o.perm, expected)

    def test_morton_blocks(self):
        o = make_ordering("morton", 4, 4)
        # First 4 positions must fill the bottom-left 2x2 quadrant.
        first = set(o.perm[:4].tolist())
        assert first == {0, 1, 4, 5}

    def test_pseudo_hilbert_carries_two_level(self):
        o = make_ordering("pseudo-hilbert", 13, 11, tile_size=4)
        assert o.two_level is not None
        assert o.two_level.num_tiles == 12
        assert make_ordering("hilbert", 8, 8).two_level is None

    def test_coordinates(self):
        o = make_ordering("row-major", 3, 4)
        x, y = o.coordinates()
        np.testing.assert_array_equal(x[:4], [0, 1, 2, 3])
        np.testing.assert_array_equal(y[:4], [0, 0, 0, 0])
        np.testing.assert_array_equal(y[-1:], [2])

    @given(
        name=st.sampled_from(ORDERING_NAMES),
        rows=st.integers(1, 20),
        cols=st.integers(1, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, name, rows, cols):
        o = make_ordering(name, rows, cols)
        data = np.arange(rows * cols)
        np.testing.assert_array_equal(o.from_ordered(o.to_ordered(data)).ravel(), data)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_ordering("zigzag", 4, 4)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            make_ordering("hilbert", 0, 4)

    def test_length_validation(self):
        o = make_ordering("hilbert", 4, 4)
        with pytest.raises(ValueError):
            o.to_ordered(np.zeros(15))

    def test_hilbert_locality_beats_row_major(self):
        """Mean 2D distance between layout neighbours must be smaller
        under Hilbert than row-major on a tall domain."""

        def mean_neighbour_distance(o):
            x, y = o.coordinates()
            return float(np.mean(np.abs(np.diff(x)) + np.abs(np.diff(y))))

        hil = make_ordering("hilbert", 32, 32)
        row = make_ordering("row-major", 32, 32)
        assert mean_neighbour_distance(hil) < mean_neighbour_distance(row)


class TestTileSizeHeuristic:
    def test_min_tiles_larger_than_domain(self):
        from repro.ordering import choose_tile_size

        # Cannot produce more tiles than cells: degrades to 1x1 tiles.
        assert choose_tile_size(4, 4, min_tiles=100) == 1

    def test_single_cell_domain(self):
        from repro.ordering import choose_tile_size, pseudo_hilbert_order

        assert choose_tile_size(1, 1) == 1
        o = pseudo_hilbert_order(1, 1)
        assert o.perm.tolist() == [0]

    def test_thin_domains(self):
        from repro.ordering import pseudo_hilbert_order

        for rows, cols in [(1, 17), (17, 1), (2, 31)]:
            o = pseudo_hilbert_order(rows, cols)
            assert np.unique(o.perm).shape[0] == rows * cols
