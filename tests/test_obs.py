"""The observability layer: spans, counters, capture scoping, export,
CLI trace surface, and the disabled-overhead guarantee."""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.solvers import cgls, sirt


class TestSpans:
    def test_span_measures_duration_without_capture(self):
        with obs.span("idle") as sp:
            time.sleep(0.002)
        assert sp.duration >= 0.002
        assert not obs.REGISTRY.active

    def test_capture_collects_spans(self):
        with obs.capture() as cap:
            with obs.span("outer"):
                with obs.span("inner", detail=7):
                    pass
        assert cap.span_names() == ["inner", "outer"]
        (inner,) = cap.find_spans("inner")
        assert inner.attrs == {"detail": 7}
        assert inner.parent is cap.find_spans("outer")[0]

    def test_span_tree_roots_and_children(self):
        with obs.capture() as cap:
            with obs.span("a"):
                with obs.span("b"):
                    pass
                with obs.span("c"):
                    pass
            with obs.span("d"):
                pass
        roots = cap.roots()
        assert [r.name for r in roots] == ["a", "d"]
        a = cap.find_spans("a")[0]
        assert [c.name for c in cap.children(a)] == ["b", "c"]

    def test_nothing_recorded_outside_capture(self):
        with obs.span("before"):
            pass
        with obs.capture() as cap:
            pass
        with obs.span("after"):
            pass
        assert cap.spans == []

    def test_nested_captures_both_record(self):
        with obs.capture() as outer:
            with obs.span("first"):
                pass
            with obs.capture() as inner:
                with obs.span("second"):
                    pass
        assert outer.span_names() == ["first", "second"]
        assert inner.span_names() == ["second"]

    def test_span_survives_exception(self):
        with obs.capture() as cap:
            with pytest.raises(RuntimeError):
                with obs.span("failing"):
                    raise RuntimeError("boom")
            with obs.span("next"):
                pass
        assert cap.span_names() == ["failing", "next"]
        # The failing span must have been popped: "next" is a root.
        assert cap.find_spans("next")[0].parent is None

    def test_traced_decorator(self):
        @obs.traced("math.double")
        def double(v):
            return 2 * v

        assert double(21) == 42  # inactive: plain call
        with obs.capture() as cap:
            assert double(21) == 42
        assert cap.span_names() == ["math.double"]


class TestCounters:
    def test_add_count_accumulates(self):
        with obs.capture() as cap:
            obs.add_count(obs.SPMV_FLOPS, 100)
            obs.add_count(obs.SPMV_FLOPS, 50)
        assert cap.total(obs.SPMV_FLOPS) == 150
        assert cap.events(obs.SPMV_FLOPS) == 2
        assert cap.counters[obs.SPMV_FLOPS].unit == "flop"

    def test_unit_mismatch_rejected(self):
        with obs.capture():
            obs.add_count("custom.counter", 1, unit="widget")
            with pytest.raises(ValueError, match="unit"):
                obs.add_count("custom.counter", 1, unit="byte")

    def test_unknown_counter_defaults_to_count_unit(self):
        with obs.capture() as cap:
            obs.add_count("adhoc.thing", 3)
        assert cap.counters["adhoc.thing"].unit == "count"

    def test_add_count_noop_when_inactive(self):
        obs.add_count(obs.SPMV_FLOPS, 10**9)  # must not raise or leak
        with obs.capture() as cap:
            pass
        assert cap.total(obs.SPMV_FLOPS) == 0.0

    def test_counter_events_record_running_total(self):
        with obs.capture() as cap:
            obs.add_count(obs.COMM_BYTES, 10)
            obs.add_count(obs.COMM_BYTES, 5)
        totals = [total for _, name, total in cap.counter_events if name == obs.COMM_BYTES]
        assert totals == [10, 15]


class TestChromeExport:
    def test_export_structure(self, tmp_path):
        with obs.capture() as cap:
            with obs.span("work", size=3):
                obs.add_count(obs.SPMV_FLOPS, 7)
        path = tmp_path / "trace.json"
        cap.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "C", "M"} <= phases
        (work,) = [e for e in doc["traceEvents"] if e.get("name") == "work"]
        assert work["ph"] == "X"
        assert work["dur"] >= 0
        assert work["args"] == {"size": 3}

    def test_timestamps_relative_to_origin(self):
        with obs.capture() as cap:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        doc = cap.to_chrome_trace()
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(ts) == 0.0
        assert ts == sorted(ts)

    def test_empty_capture_exports(self, tmp_path):
        with obs.capture() as cap:
            pass
        path = tmp_path / "empty.json"
        cap.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert all(e["ph"] == "M" for e in doc["traceEvents"])


class TestInstrumentation:
    def test_preprocess_emits_four_stage_spans(self, small_geometry):
        with obs.capture() as cap:
            _, report = preprocess(small_geometry)
        (root,) = cap.find_spans("preprocess")
        stages = [c.name for c in cap.children(root)]
        assert stages == [
            "preprocess.ordering",
            "preprocess.tracing",
            "preprocess.transpose",
            "preprocess.partitioning",
        ]
        # Spans still populate the report, and they agree.
        (tracing,) = cap.find_spans("preprocess.tracing")
        assert report.tracing_seconds == pytest.approx(tracing.duration)
        assert report.total_seconds > 0

    @pytest.mark.parametrize("kernel", ["csr", "buffered", "ell"])
    def test_spmv_counters_per_kernel(self, small_geometry, kernel):
        op, _ = preprocess(
            small_geometry,
            config=OperatorConfig(kernel=kernel, partition_size=32, buffer_bytes=4096),
        )
        x = np.ones(op.num_pixels, dtype=np.float32)
        with obs.capture() as cap:
            op.forward(x)
            op.adjoint(np.ones(op.num_rays, dtype=np.float32))
        assert cap.total(obs.SPMV_CALLS) == 2
        assert cap.total(obs.SPMV_FLOPS) == 2 * 2 * op.matrix.nnz
        footprint = op.memory_footprint()
        assert cap.total(obs.SPMV_REGULAR_BYTES) == (
            footprint["regular_forward"] + footprint["regular_adjoint"]
        )
        assert cap.total(obs.SPMV_IRREGULAR_BYTES) == (
            footprint["irregular_forward"] + footprint["irregular_adjoint"]
        )
        spans = cap.span_names()
        assert spans.count("spmv.forward") == 1
        assert spans.count("spmv.adjoint") == 1
        if kernel == "buffered":
            assert cap.total(obs.BUFFER_STAGES) > 0

    def test_solver_iteration_spans_nested_under_solve(self, small_operator):
        y = small_operator.forward(np.ones(small_operator.num_pixels, dtype=np.float32))
        with obs.capture() as cap:
            result = cgls(small_operator, y, num_iterations=4)
        (solve,) = cap.find_spans("solver.solve")
        assert solve.attrs["solver"] == "cg"
        iterations = cap.find_spans("solver.iteration")
        assert len(iterations) == result.iterations == 4
        assert all(s.parent is solve for s in iterations)
        assert cap.total(obs.SOLVER_ITERATIONS) == 4
        # Each iteration contains one forward and one adjoint SpMV.
        first = iterations[0]
        kinds = sorted(c.name for c in cap.children(first))
        assert kinds == ["spmv.adjoint", "spmv.forward"]

    def test_sirt_iterations_observed(self, small_operator):
        y = small_operator.forward(np.ones(small_operator.num_pixels, dtype=np.float32))
        with obs.capture() as cap:
            sirt(small_operator, y, num_iterations=3)
        assert len(cap.find_spans("solver.iteration")) == 3
        assert cap.find_spans("solver.solve")[0].attrs["solver"] == "sirt"

    def test_comm_counters_from_simulated_mpi(self):
        from repro.dist import SimComm

        comm = SimComm(3)
        payload = [
            [np.ones(4, dtype=np.float32) for _ in range(3)] for _ in range(3)
        ]
        with obs.capture() as cap:
            comm.alltoallv(payload)
        # 6 off-diagonal messages of 16 bytes; diagonal self-sends excluded.
        assert cap.total(obs.COMM_BYTES) == 6 * 16
        assert cap.total(obs.COMM_MESSAGES) == 6
        assert cap.span_names().count("comm.alltoallv") == 1
        assert cap.total(obs.COMM_BYTES) == comm.log.off_diagonal_volume()


class TestCLITraceSurface:
    def test_reconstruct_trace_file_structure(self, tmp_path):
        trace = tmp_path / "t.json"
        out = tmp_path / "r.npz"
        assert main([
            "reconstruct", "--demo", "ADS1", "--scale", "0.1",
            "--iterations", "4", "--trace", str(trace), "-o", str(out),
        ]) == 0
        doc = json.loads(trace.read_text())
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        for stage in (
            "preprocess.ordering",
            "preprocess.tracing",
            "preprocess.transpose",
            "preprocess.partitioning",
        ):
            assert names.count(stage) == 1, stage
        assert names.count("solver.iteration") == 4
        assert names.count("solver.solve") == 1
        assert "spmv.forward" in names

    def test_metrics_flag_prints_counters(self, tmp_path, capsys):
        assert main([
            "reconstruct", "--demo", "ADS1", "--scale", "0.1",
            "--iterations", "2", "--metrics", "-o", str(tmp_path / "r.npz"),
        ]) == 0
        out = capsys.readouterr().out
        assert "spmv.flops" in out
        assert "solver.iterations" in out

    def test_trace_flag_parses_on_all_subcommands(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["info", "--metrics"],
            ["preprocess", "--angles", "8", "--channels", "8", "--trace", "t.json"],
            ["reconstruct", "--demo", "ADS1", "--trace", "t.json"],
            ["bench", "--trace", "t.json"],
            ["scale", "--metrics"],
        ):
            args = parser.parse_args(argv)
            assert hasattr(args, "trace") and hasattr(args, "metrics")

    def test_registry_inactive_after_cli_capture(self, tmp_path):
        main([
            "reconstruct", "--demo", "ADS1", "--scale", "0.1",
            "--iterations", "1", "--trace", str(tmp_path / "t.json"),
            "-o", str(tmp_path / "r.npz"),
        ])
        assert not obs.REGISTRY.active


class TestDisabledOverhead:
    def test_spmv_overhead_within_5_percent_when_disabled(self):
        """Instrumented operator dispatch vs the bare kernel it wraps.

        Mirrors the ``bench_kernels.py`` small case (scaled ADS2
        buffered SpMV).  With no capture active the operator's
        ``forward`` must stay within 5% of calling the underlying
        buffered kernel directly — the instrumentation is one
        attribute check.
        """
        from repro.core import get_dataset

        spec = get_dataset("ADS2").scaled(0.125)
        op, _ = preprocess(spec.geometry())
        x = np.random.default_rng(0).random(op.num_pixels).astype(np.float32)
        kernel = op.buffered_forward.spmv_vectorized

        def best_of(fn, repeats=30):
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn(x)
                times.append(time.perf_counter() - t0)
            return min(times)

        best_of(kernel, repeats=5)  # warm up
        bare = best_of(kernel)
        instrumented = best_of(op.forward)
        assert not obs.REGISTRY.active
        assert instrumented <= bare * 1.05, (
            f"disabled-obs overhead too high: {instrumented:.6f}s vs {bare:.6f}s"
        )
