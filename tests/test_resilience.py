"""Resilience subsystem: fault-injected comm, checkpoint/resume, health.

Three claims are exercised on the same distributed scenario the
equivalence suite uses (``A = R C A_p`` over simulated ranks):

* transient communication faults (drop / corrupt / delay) are healed
  by the reliable transport **bit-exactly** — the chaos run returns
  the same iterate as the fault-free run, and the logical comm volume
  (what the Table 1 cost model meters) is unchanged;
* a rank crash triggers graceful degradation — the dead rank's row
  partitions are redistributed to the survivors and the solve
  completes within 1e-5 of the fault-free reconstruction;
* a killed solve resumes from its periodic checkpoint to a
  bit-identical final iterate, and the numerical-health monitor turns
  NaN/divergence into rollback-with-damping instead of garbage output.
"""

import warnings

import numpy as np
import pytest

from repro import obs
from repro.core import OperatorConfig, preprocess, reconstruct
from repro.dist import DistributedOperator, SimComm, decompose_both
from repro.geometry import ParallelBeamGeometry
from repro.resilience import (
    CheckpointError,
    CheckpointIntegrityWarning,
    CheckpointManager,
    CommDeliveryError,
    FaultConfig,
    FaultInjector,
    HealthMonitor,
    RankCrashError,
    SolverCheckpoint,
    parse_fault_spec,
)
from repro.solvers import cgls, mlem, sirt

ITERATIONS = 12


@pytest.fixture(scope="module")
def system():
    """Serial operator + consistent measurement (same as equivalence suite)."""
    geometry = ParallelBeamGeometry(24, 32)
    operator, _ = preprocess(geometry, config=OperatorConfig(kernel="csr"))
    truth = np.random.default_rng(0).random(operator.num_pixels).astype(np.float32)
    y = operator.forward(truth)
    reference = cgls(operator, y, num_iterations=ITERATIONS)
    return operator, y, reference


def _partitioned(operator, num_ranks, faults=None):
    tomo_dec, sino_dec = decompose_both(
        operator.tomo_ordering, operator.sino_ordering, num_ranks
    )
    comm = None
    if faults is not None:
        injector = faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        comm = SimComm(num_ranks, fault_injector=injector)
    return DistributedOperator(operator.matrix, tomo_dec, sino_dec, comm=comm)


class TestFaultSpec:
    def test_parse_full_spec(self):
        cfg = parse_fault_spec(
            "drop=0.05, corrupt=0.02, delay=0.01, crash=1@3, crash=2@7, "
            "seed=42, retries=5, backoff=1e-4"
        )
        assert cfg.drop == 0.05 and cfg.corrupt == 0.02 and cfg.delay == 0.01
        assert cfg.crashes == ((3, 1), (7, 2))
        assert cfg.seed == 42 and cfg.max_retries == 5 and cfg.backoff_base == 1e-4

    def test_crash_without_call_index_defaults_to_first_collective(self):
        assert parse_fault_spec("crash=2").crashes == ((1, 2),)

    @pytest.mark.parametrize("bad", ["drop", "nope=1", "drop=1.5", "crash=0@0"])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_default_seed_only_fills_gap(self):
        assert parse_fault_spec("drop=0.1", default_seed=9).seed == 9
        assert parse_fault_spec("drop=0.1,seed=3", default_seed=9).seed == 3

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultConfig.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "drop=0.05")
        monkeypatch.setenv("REPRO_FAULT_SEED", "123")
        cfg = FaultConfig.from_env()
        assert cfg.drop == 0.05 and cfg.seed == 123

    def test_injection_is_seeded_and_reproducible(self):
        cfg = FaultConfig(drop=0.3, corrupt=0.2, seed=11)
        inj_a, inj_b = FaultInjector(cfg), FaultInjector(cfg)
        seq_a = [inj_a.draw(0, 1) for _ in range(50)]
        seq_b = [inj_b.draw(0, 1) for _ in range(50)]
        assert seq_a == seq_b
        assert {"drop", "corrupt"} & set(seq_a)  # faults actually fire

    def test_local_copies_never_fault(self):
        inj = FaultInjector(FaultConfig(drop=0.99, seed=0))
        assert all(inj.draw(2, 2) == "ok" for _ in range(20))

    def test_corrupt_payload_always_changes_bytes(self):
        inj = FaultInjector(FaultConfig(seed=0))
        payload = np.zeros(8, dtype=np.float32)
        for _ in range(10):
            corrupted = inj.corrupt_payload(payload)
            assert not np.array_equal(corrupted.view(np.uint8), payload.view(np.uint8))


@pytest.mark.parametrize("num_ranks", [2, 4])
class TestChaosSweep:
    """Transient-fault sweep over the distributed equivalence scenario."""

    @pytest.mark.parametrize(
        "spec",
        [
            "drop=0.08,seed=1",
            "drop=0.05,corrupt=0.02,seed=7",
            "drop=0.10,corrupt=0.05,delay=0.05,seed=13",
        ],
    )
    def test_recovered_solve_is_bit_exact(self, system, num_ranks, spec):
        operator, y, _ = system
        clean = cgls(_partitioned(operator, num_ranks), y, num_iterations=ITERATIONS)
        injector = FaultInjector(FaultConfig.parse(spec))
        chaotic = cgls(
            _partitioned(operator, num_ranks, faults=injector),
            y,
            num_iterations=ITERATIONS,
        )
        # Retried payloads are redelivered intact, so recovery is exact,
        # not merely approximate.
        assert np.array_equal(chaotic.x, clean.x)
        stats = injector.stats
        assert stats.drops + stats.corruptions + stats.delays > 0
        # Every drop/corruption was eventually healed (a message that
        # faults twice still counts as one recovery).
        assert stats.recoveries > 0
        assert stats.retries >= stats.recoveries

    def test_comm_log_meters_logical_traffic_only(self, system, num_ranks):
        """Retries are overhead, not algorithm traffic: the CommLog (and
        hence the Table 1 comm counters) must match the fault-free run."""
        operator, y, _ = system
        clean_op = _partitioned(operator, num_ranks)
        with obs.capture():
            cgls(clean_op, y, num_iterations=ITERATIONS)
        chaos_op = _partitioned(
            operator, num_ranks, faults=FaultConfig(drop=0.05, corrupt=0.02, seed=7)
        )
        with obs.capture() as cap:
            cgls(chaos_op, y, num_iterations=ITERATIONS)
        assert (
            chaos_op.comm.log.off_diagonal_volume()
            == clean_op.comm.log.off_diagonal_volume()
        )
        assert cap.total(obs.COMM_BYTES) == chaos_op.comm.log.off_diagonal_volume()
        assert cap.total(obs.FAULT_RETRIES) > 0

    def test_exhausted_retry_budget_raises(self, system, num_ranks):
        operator, y, _ = system
        op = _partitioned(
            operator, num_ranks, faults=FaultConfig(drop=0.9, seed=0, max_retries=0)
        )
        with pytest.raises(CommDeliveryError):
            cgls(op, y, num_iterations=2)


class TestCrashDegradation:
    def test_crash_redistributes_and_converges(self, system):
        operator, y, reference = system
        injector = FaultInjector(FaultConfig(crashes=((5, 1),), seed=3))
        op = _partitioned(operator, 4, faults=injector)
        result = cgls(op, y, num_iterations=ITERATIONS)
        assert op.num_ranks == 3
        assert op.degradations == [
            {"dead": [1], "from_ranks": 4, "to_ranks": 3, "topology": "flat(4)"}
        ]
        assert injector.stats.crashes == 1
        scale = float(np.max(np.abs(reference.x)))
        assert np.max(np.abs(result.x - reference.x)) <= 1e-5 * scale

    def test_chaos_plus_crash_still_converges(self, system):
        """The acceptance scenario: p=0.05 drop+corrupt AND a rank crash."""
        operator, y, reference = system
        injector = FaultInjector(
            FaultConfig(drop=0.05, corrupt=0.05, crashes=((6, 2),), seed=21)
        )
        result = cgls(
            _partitioned(operator, 4, faults=injector), y, num_iterations=ITERATIONS
        )
        assert injector.stats.crashes == 1
        assert injector.stats.drops + injector.stats.corruptions > 0
        scale = float(np.max(np.abs(reference.x)))
        assert np.max(np.abs(result.x - reference.x)) <= 1e-5 * scale

    def test_injector_survives_degradation(self, system):
        """The same injector (same RNG stream) drives the rebuilt comm."""
        operator, y, _ = system
        injector = FaultInjector(FaultConfig(drop=0.05, crashes=((4, 0),), seed=5))
        op = _partitioned(operator, 4, faults=injector)
        cgls(op, y, num_iterations=ITERATIONS)
        assert op.comm.fault_injector is injector
        assert injector.dead_ranks() == set()  # consumed by degrade()

    def test_crash_of_last_survivor_reraises(self, system):
        operator, y, _ = system
        injector = FaultInjector(FaultConfig(crashes=((1, 0), (2, 0)), seed=0))
        op = _partitioned(operator, 2, faults=injector)
        # Rank 0 dies at call 1 (degrade to 1 rank); the renumbered sole
        # survivor dies at call 2 — nothing remains to absorb the work.
        with pytest.raises(RankCrashError):
            cgls(op, y, num_iterations=ITERATIONS)


class TestCheckpointResume:
    def test_kill_and_resume_cg_is_bit_exact(self, system, tmp_path):
        operator, y, _ = system
        path = tmp_path / "solve.npz"
        full = cgls(operator, y, num_iterations=ITERATIONS)
        # "Killed" run: stops at iteration 8 with a checkpoint at 8.
        cgls(
            operator, y, num_iterations=8,
            checkpoint=CheckpointManager(path, every=4),
        )
        resumed = cgls(
            operator, y, num_iterations=ITERATIONS,
            resume=CheckpointManager(path),
        )
        assert np.array_equal(resumed.x, full.x)
        assert resumed.residual_norms == full.residual_norms
        assert resumed.solution_norms == full.solution_norms
        assert resumed.iterations == full.iterations

    def test_resume_accepts_path_and_snapshot(self, system, tmp_path):
        operator, y, _ = system
        path = tmp_path / "cg.npz"
        manager = CheckpointManager(path, every=3)
        full = cgls(operator, y, num_iterations=9, checkpoint=manager)
        by_path = cgls(operator, y, num_iterations=9, resume=path)
        by_snap = cgls(operator, y, num_iterations=9, resume=manager.last)
        assert np.array_equal(by_path.x, full.x)
        assert np.array_equal(by_snap.x, full.x)

    def test_sirt_resume_is_bit_exact(self, system, tmp_path):
        operator, y, _ = system
        path = tmp_path / "sirt.npz"
        full = sirt(operator, y, num_iterations=10)
        sirt(operator, y, num_iterations=6, checkpoint=CheckpointManager(path, every=3))
        resumed = sirt(operator, y, num_iterations=10, resume=path)
        assert np.array_equal(resumed.x, full.x)
        assert resumed.residual_norms == full.residual_norms

    def test_mlem_resume_is_bit_exact(self, system, tmp_path):
        operator, _, _ = system
        truth = np.random.default_rng(2).random(operator.num_pixels)
        y = np.abs(np.asarray(operator.forward(truth), dtype=np.float64))
        path = tmp_path / "mlem.npz"
        full = mlem(operator, y, num_iterations=8)
        mlem(operator, y, num_iterations=4, checkpoint=CheckpointManager(path, every=2))
        resumed = mlem(operator, y, num_iterations=8, resume=path)
        assert np.array_equal(resumed.x, full.x)

    def test_resume_rejects_wrong_solver(self, system, tmp_path):
        operator, y, _ = system
        path = tmp_path / "cg.npz"
        cgls(operator, y, num_iterations=4, checkpoint=CheckpointManager(path, every=2))
        with pytest.raises(CheckpointError, match="cannot resume"):
            sirt(operator, y, num_iterations=4, resume=path)

    def test_explicit_resume_from_missing_file_is_an_error(self, system, tmp_path):
        operator, y, _ = system
        with pytest.raises(CheckpointError, match="no checkpoint"):
            cgls(operator, y, num_iterations=4, resume=tmp_path / "nothing.npz")

    def test_corrupt_checkpoint_warns_on_load_and_raises_on_require(self, tmp_path):
        path = tmp_path / "ck.npz"
        manager = CheckpointManager(path, every=1)
        manager.save(
            SolverCheckpoint(
                solver="cg", iteration=1,
                arrays={"x": np.arange(6, dtype=np.float64)},
                residual_norms=[1.0], solution_norms=[2.0],
            )
        )
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        fresh = CheckpointManager(path)
        with pytest.warns(CheckpointIntegrityWarning):
            assert fresh.load() is None
        with pytest.raises(CheckpointError):
            CheckpointManager(path).require()

    def test_atomic_overwrite_keeps_latest_snapshot(self, tmp_path):
        path = tmp_path / "ck.npz"
        manager = CheckpointManager(path, every=1)
        for it in (1, 2, 3):
            manager.save(
                SolverCheckpoint(
                    solver="cg", iteration=it,
                    arrays={"x": np.full(4, float(it))},
                    residual_norms=[float(it)], solution_norms=[0.0],
                )
            )
        loaded = CheckpointManager(path).require()
        assert loaded.iteration == 3
        assert np.array_equal(loaded.arrays["x"], np.full(4, 3.0))

    def test_counters_account_saves_and_restores(self, system, tmp_path):
        operator, y, _ = system
        path = tmp_path / "ck.npz"
        with obs.capture() as cap:
            cgls(operator, y, num_iterations=8,
                 checkpoint=CheckpointManager(path, every=4))
            cgls(operator, y, num_iterations=ITERATIONS, resume=path)
        assert cap.total(obs.CHECKPOINT_SAVES) == 2
        assert cap.total(obs.CHECKPOINT_RESTORES) == 1
        assert cap.total(obs.CHECKPOINT_BYTES_WRITTEN) > 0


class _PoisonedOperator:
    """Delegating wrapper whose forward turns to NaN after N calls."""

    def __init__(self, op, poison_after):
        self._op = op
        self._calls = 0
        self._poison_after = poison_after
        self.num_rays = op.num_rays
        self.num_pixels = op.num_pixels

    def forward(self, x):
        out = np.asarray(self._op.forward(x), dtype=np.float64)
        self._calls += 1
        if self._calls > self._poison_after:
            out = out.copy()
            out[0] = np.nan
        return out

    def adjoint(self, y):
        return self._op.adjoint(np.nan_to_num(y))


class TestHealthMonitor:
    def test_non_finite_triggers_rollback_then_abort(self):
        monitor = HealthMonitor(max_rollbacks=1)
        x = np.ones(4)
        assert monitor.observe(1, x, 1.0) == "ok"
        assert monitor.observe(2, x, float("nan")) == "rollback"
        monitor.rolled_back()
        assert monitor.observe(3, x, float("inf")) == "abort"
        assert [i.kind for i in monitor.incidents] == ["non-finite", "non-finite"]

    def test_sustained_divergence_needs_full_window(self):
        monitor = HealthMonitor(divergence_window=3, divergence_factor=10.0)
        x = np.ones(4)
        assert monitor.observe(1, x, 1.0) == "ok"
        assert monitor.observe(2, x, 100.0) == "ok"
        assert monitor.observe(3, x, 100.0) == "ok"
        assert monitor.observe(4, x, 5.0) == "ok"  # recovery resets the streak
        assert monitor.observe(5, x, 200.0) == "ok"
        assert monitor.observe(6, x, 200.0) == "ok"
        assert monitor.observe(7, x, 200.0) == "rollback"
        assert monitor.last_incident.kind == "divergence"

    def test_cg_rolls_back_to_checkpoint_with_damped_step(self, system):
        operator, y, _ = system
        poisoned = _PoisonedOperator(operator, poison_after=9)
        monitor = HealthMonitor(max_rollbacks=2)
        with obs.capture() as cap:
            result = cgls(
                poisoned, y, num_iterations=ITERATIONS,
                checkpoint=CheckpointManager(every=2),
                health=monitor,
            )
        assert np.all(np.isfinite(result.x))
        assert monitor.rollbacks >= 1
        assert "numerical health abort" in result.stop_reason
        assert cap.total(obs.HEALTH_EVENTS) >= 1
        assert cap.total(obs.HEALTH_ROLLBACKS) >= 1

    def test_sirt_rollback_halves_relaxation_and_finishes(self, system):
        operator, y, _ = system
        poisoned = _PoisonedOperator(operator, poison_after=6)
        monitor = HealthMonitor(max_rollbacks=1)
        result = sirt(
            poisoned, y, num_iterations=8,
            checkpoint=CheckpointManager(every=2),
            health=monitor,
        )
        assert np.all(np.isfinite(result.x))
        assert monitor.rollbacks == 1

    def test_healthy_solve_is_untouched_by_monitor(self, system):
        operator, y, reference = system
        result = cgls(
            operator, y, num_iterations=ITERATIONS,
            checkpoint=CheckpointManager(every=4),
            health=HealthMonitor(),
        )
        assert np.array_equal(result.x, reference.x)
        assert result.stop_reason == reference.stop_reason


class TestReconstructIntegration:
    @pytest.fixture(scope="class")
    def scene(self):
        geometry = ParallelBeamGeometry(24, 32)
        rng = np.random.default_rng(4)
        operator, _ = preprocess(geometry, config=OperatorConfig(kernel="csr"))
        truth = rng.random(operator.num_pixels).astype(np.float32)
        sinogram = operator.ordered_to_sinogram(
            np.asarray(operator.forward(truth), dtype=np.float64)
        )
        return geometry, operator, sinogram

    def test_faults_require_multiple_ranks(self, scene):
        geometry, operator, sinogram = scene
        with pytest.raises(ValueError, match="num_ranks"):
            reconstruct(sinogram, geometry, operator=operator, faults="drop=0.1")

    def test_resilience_kwargs_rejected_for_non_iterative_solvers(self, scene):
        geometry, operator, sinogram = scene
        with pytest.raises(ValueError, match="does not support"):
            reconstruct(
                sinogram, geometry, operator=operator,
                solver="sgd", checkpoint_every=2,
            )

    def test_fault_stats_and_checkpoint_reported_in_extra(self, scene, tmp_path):
        geometry, operator, sinogram = scene
        result = reconstruct(
            sinogram, geometry, operator=operator,
            solver="cg", iterations=6, num_ranks=2,
            faults="drop=0.05,seed=7",
            checkpoint=tmp_path / "ck", checkpoint_every=3,
            health=True,
        )
        assert result.extra["fault_stats"]["retries"] >= result.extra[
            "fault_stats"
        ]["drops"]
        assert result.extra["checkpoint_path"].endswith(".npz")

    def test_reconstruct_resume_matches_uninterrupted(self, scene, tmp_path):
        geometry, operator, sinogram = scene
        path = tmp_path / "ck"
        full = reconstruct(
            sinogram, geometry, operator=operator, solver="cg", iterations=10
        )
        reconstruct(
            sinogram, geometry, operator=operator, solver="cg", iterations=5,
            checkpoint=path, checkpoint_every=5,
        )
        resumed = reconstruct(
            sinogram, geometry, operator=operator, solver="cg", iterations=10,
            resume=path,
        )
        assert np.array_equal(resumed.image, full.image)

    def test_ambient_env_chaos_is_bit_exact(self, scene, monkeypatch):
        """The CI chaos job's contract: REPRO_FAULTS + REPRO_FAULT_SEED on
        an unmodified distributed solve changes nothing observable."""
        geometry, operator, sinogram = scene
        clean = reconstruct(
            sinogram, geometry, operator=operator,
            solver="cg", iterations=8, num_ranks=4,
        )
        monkeypatch.setenv("REPRO_FAULTS", "drop=0.03,corrupt=0.01")
        monkeypatch.setenv("REPRO_FAULT_SEED", "20190817")
        chaotic = reconstruct(
            sinogram, geometry, operator=operator,
            solver="cg", iterations=8, num_ranks=4,
        )
        assert np.array_equal(chaotic.image, clean.image)
