"""Tests for the beamline workload scenarios.

Sparse-view and limited-angle geometries must be *exact* row subsets
of the full scan (same angles, bitwise), the try-center sweep's
batched solve must be bit-identical to looped single solves, and the
entropy score must actually find a known injected axis shift.
"""

import numpy as np
import pytest

from repro.core import OperatorConfig, preprocess
from repro.geometry import ConeBeamGeometry, ParallelBeamGeometry
from repro.phantoms import shepp_logan
from repro.scenarios import (
    center_slab,
    limited_angle_geometry,
    limited_angle_sinogram,
    nominal_center,
    reconstruct_scenario,
    reconstruction_entropy,
    shift_sinogram,
    sparse_view_geometry,
    sparse_view_sinogram,
    try_center,
)
from repro.solvers import cgls, cgls_batch


@pytest.fixture(scope="module")
def scan():
    """Full scan: geometry, operator, phantom, noiseless sinogram."""
    geometry = ParallelBeamGeometry(48, 32)
    op, _ = preprocess(geometry, config=OperatorConfig(kernel="csr"), cache="off")
    phantom = shepp_logan(32)
    sinogram = op.project_image(phantom)
    return geometry, op, phantom, sinogram


class TestSparseView:
    def test_exact_angle_subset(self, scan):
        geometry, *_ = scan
        sub = sparse_view_geometry(geometry, 4)
        assert sub.num_angles == 12
        assert np.array_equal(sub.angles(), geometry.angles()[::4])
        assert sub.grid is geometry.grid

    def test_sinogram_rows_match(self, scan):
        _, _, _, sinogram = scan
        assert np.array_equal(
            sparse_view_sinogram(sinogram, 4), sinogram[::4]
        )

    def test_rejects_non_divisor(self, scan):
        geometry, *_ = scan
        with pytest.raises(ValueError, match="does not divide"):
            sparse_view_geometry(geometry, 5)

    def test_cone_geometry_supported(self):
        cone = ConeBeamGeometry(12, 4, 8, source_distance=24.0)
        sub = sparse_view_geometry(cone, 3)
        assert sub.num_angles == 4
        assert np.array_equal(sub.angles(), cone.angles()[::3])

    def test_subset_rays_match_full_system(self, scan):
        """The degraded forward model is a row subset of the full one."""
        geometry, op, phantom, _ = scan
        sub = sparse_view_geometry(geometry, 4)
        sub_op, _ = preprocess(
            sub, config=OperatorConfig(kernel="csr"), cache="off"
        )
        full = op.project_image(phantom)
        np.testing.assert_allclose(
            sub_op.project_image(phantom), full[::4], rtol=1e-5, atol=1e-5
        )


class TestLimitedAngle:
    def test_exact_prefix_angles(self, scan):
        geometry, *_ = scan
        sub = limited_angle_geometry(geometry, 0.5)
        assert sub.num_angles == 24
        np.testing.assert_allclose(
            sub.angles(), geometry.angles()[:24], atol=1e-15
        )

    def test_sinogram_prefix(self, scan):
        *_, sinogram = scan
        assert np.array_equal(
            limited_angle_sinogram(sinogram, 0.5), sinogram[:24]
        )

    def test_fraction_validation(self, scan):
        geometry, *_ = scan
        with pytest.raises(ValueError):
            limited_angle_geometry(geometry, 0.0)
        with pytest.raises(ValueError):
            limited_angle_geometry(geometry, 1.5)
        with pytest.raises(ValueError, match="keeps zero"):
            limited_angle_geometry(geometry, 0.01)


class TestReconstructScenario:
    def test_sparse_view_tv_beats_cgls(self, scan):
        geometry, _, phantom, sinogram = scan
        common = dict(
            keep_every=4,
            num_iterations=12,
            config=OperatorConfig(kernel="csr"),
            cache="off",
        )
        tv = reconstruct_scenario(
            geometry, sinogram, "sparse-view", solver="tv", strength=0.02, **common
        )
        plain = reconstruct_scenario(
            geometry, sinogram, "sparse-view", solver="cgls", **common
        )
        err_tv = np.linalg.norm(tv.image - phantom)
        err_plain = np.linalg.norm(plain.image - phantom)
        assert err_tv < err_plain
        assert tv.views_kept == 12 and tv.views_dropped == 36

    def test_limited_angle_runs(self, scan):
        geometry, _, phantom, sinogram = scan
        result = reconstruct_scenario(
            geometry,
            sinogram,
            "limited-angle",
            fraction=0.5,
            solver="gradient",
            strength=0.05,
            num_iterations=12,
            config=OperatorConfig(kernel="csr"),
            cache="off",
        )
        assert result.image.shape == phantom.shape
        assert result.views_kept == 24
        err = np.linalg.norm(result.image - phantom) / np.linalg.norm(phantom)
        assert err < 0.6  # half the views still reconstructs coarsely

    def test_unknown_kind_rejected(self, scan):
        geometry, _, _, sinogram = scan
        with pytest.raises(ValueError, match="unknown scenario kind"):
            reconstruct_scenario(geometry, sinogram, "full")

    def test_counters(self, scan):
        from repro import obs

        geometry, _, _, sinogram = scan
        with obs.capture() as cap:
            reconstruct_scenario(
                geometry,
                sinogram,
                "sparse-view",
                keep_every=4,
                solver="cgls",
                num_iterations=3,
                config=OperatorConfig(kernel="csr"),
                cache="off",
            )
        assert cap.total(obs.SCENARIO_RUNS) == 1
        assert cap.total(obs.SCENARIO_VIEWS_DROPPED) == 36


class TestShiftSinogram:
    def test_zero_shift_is_identity(self, scan):
        *_, sinogram = scan
        assert np.array_equal(shift_sinogram(sinogram, 0.0), sinogram)

    def test_integer_shift_moves_columns(self, scan):
        *_, sinogram = scan
        shifted = shift_sinogram(sinogram, 2.0)
        assert np.allclose(shifted[:, :-2], sinogram[:, 2:])
        assert np.allclose(shifted[:, -2:], 0.0)

    def test_opposite_shifts_invert(self, scan):
        *_, sinogram = scan
        inner = shift_sinogram(shift_sinogram(sinogram, 1.0), -1.0)
        assert np.allclose(inner[:, 1:], sinogram[:, 1:])


class TestTryCenter:
    def test_batched_bitwise_equals_looped(self, scan):
        """The sweep's one batched solve == S independent solves."""
        _, op, _, sinogram = scan
        centers = nominal_center(op.geometry) + np.array([-1.0, -0.5, 0.0, 0.5, 1.0])
        slab = center_slab(op, sinogram, centers)
        batch = cgls_batch(op, slab, num_iterations=8)
        for j in range(centers.size):
            single = cgls(op, slab[:, j], num_iterations=8)
            assert np.array_equal(batch.column(j).x, single.x)

    def test_recovers_injected_shift(self, scan):
        geometry, op, _, sinogram = scan
        true_shift = 1.5
        off_center = shift_sinogram(sinogram, -true_shift)
        centers = nominal_center(geometry) + np.arange(-3.0, 3.25, 0.5)
        result = try_center(
            geometry, off_center, centers, num_iterations=8, operator=op
        )
        assert result.best_center == pytest.approx(
            nominal_center(geometry) + true_shift, abs=0.5
        )
        assert result.scores.shape == centers.shape
        assert result.images.shape == (centers.size, 32, 32)

    def test_counters(self, scan):
        from repro import obs

        geometry, op, _, sinogram = scan
        centers = nominal_center(geometry) + np.array([0.0, 1.0])
        with obs.capture() as cap:
            try_center(geometry, sinogram, centers, num_iterations=2, operator=op)
        assert cap.total(obs.SCENARIO_RUNS) == 1
        assert cap.total(obs.SCENARIO_CENTER_CANDIDATES) == 2

    def test_empty_centers_rejected(self, scan):
        geometry, op, _, sinogram = scan
        with pytest.raises(ValueError, match="non-empty"):
            try_center(geometry, sinogram, [], operator=op)


class TestEntropyScore:
    def test_sharp_beats_smeared(self, rng):
        sharp = np.zeros((32, 32))
        sharp[10:20, 10:20] = 1.0
        smeared = rng.uniform(0.0, 1.0, size=(32, 32))
        assert reconstruction_entropy(sharp) < reconstruction_entropy(smeared)

    def test_constant_image(self):
        assert reconstruction_entropy(np.full((8, 8), 3.0)) == 0.0

    def test_non_finite(self):
        img = np.ones((8, 8))
        img[0, 0] = np.nan
        assert reconstruction_entropy(img) == float("inf")
