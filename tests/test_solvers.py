"""Tests for the iterative solvers and L-curve analysis."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers import cgls, lcurve_corner, overfit_onset, sgd, sirt
from repro.sparse import CSRMatrix, scan_transpose


class MatrixOperator:
    """Minimal ProjectionOperator over a CSRMatrix (test helper)."""

    def __init__(self, matrix: CSRMatrix):
        self.matrix = matrix
        self.matrix_t = scan_transpose(matrix)

    @property
    def num_rays(self):
        return self.matrix.num_rows

    @property
    def num_pixels(self):
        return self.matrix.num_cols

    def forward(self, x):
        return self.matrix.spmv(np.asarray(x, dtype=np.float32))

    def adjoint(self, y):
        return self.matrix_t.spmv(np.asarray(y, dtype=np.float32))

    def row_sums(self):
        return self.matrix.row_sums()

    def col_sums(self):
        return self.matrix.col_sums()


@pytest.fixture()
def overdetermined_op(rng):
    S = sp.random(150, 60, density=0.25, random_state=rng, format="csr", dtype=np.float32)
    S.data[:] = np.abs(S.data) + 0.1
    return MatrixOperator(CSRMatrix.from_scipy(S))


@pytest.fixture()
def consistent_problem(overdetermined_op, rng):
    x_true = rng.random(60)
    y = overdetermined_op.forward(x_true)
    return overdetermined_op, x_true, y


class TestCGLS:
    def test_solves_consistent_system(self, consistent_problem):
        op, x_true, y = consistent_problem
        res = cgls(op, y, num_iterations=300, tolerance=1e-12)
        assert np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true) < 1e-4
        assert res.converged

    def test_residual_monotonically_decreases(self, consistent_problem):
        op, _, y = consistent_problem
        res = cgls(op, y, num_iterations=40)
        r = np.asarray(res.residual_norms)
        assert np.all(np.diff(r) <= 1e-8)

    def test_history_lengths(self, consistent_problem):
        op, _, y = consistent_problem
        res = cgls(op, y, num_iterations=10)
        assert res.iterations == 10
        assert len(res.residual_norms) == 11  # initial + per-iteration
        assert len(res.solution_norms) == 11

    def test_warm_start(self, consistent_problem):
        op, x_true, y = consistent_problem
        res = cgls(op, y, num_iterations=5, x0=x_true)
        assert res.residual_norms[0] < 1e-3

    def test_callback_invoked(self, consistent_problem):
        op, _, y = consistent_problem
        seen = []
        cgls(op, y, num_iterations=3, callback=lambda it, x: seen.append(it))
        assert seen == [1, 2, 3]

    def test_zero_rhs_converges_immediately(self, overdetermined_op):
        res = cgls(overdetermined_op, np.zeros(150), num_iterations=5)
        assert res.converged
        np.testing.assert_allclose(res.x, 0.0)

    def test_wrong_length_rejected(self, overdetermined_op):
        with pytest.raises(ValueError):
            cgls(overdetermined_op, np.zeros(149))

    def test_lcurve_accessor(self, consistent_problem):
        op, _, y = consistent_problem
        res = cgls(op, y, num_iterations=5)
        r, s = res.lcurve()
        assert r.shape == s.shape == (6,)


class TestSIRT:
    def test_reduces_residual(self, consistent_problem):
        op, _, y = consistent_problem
        res = sirt(op, y, num_iterations=100)
        assert res.residual_norms[-1] < 0.05 * res.residual_norms[0]

    def test_slower_than_cg(self, consistent_problem):
        """The Fig. 8(a) claim at equal iteration count."""
        op, _, y = consistent_problem
        res_cg = cgls(op, y, num_iterations=20)
        res_sirt = sirt(op, y, num_iterations=20)
        assert res_cg.residual_norms[-1] < res_sirt.residual_norms[-1]

    def test_nonnegativity_constraint(self, consistent_problem):
        op, _, y = consistent_problem
        res = sirt(op, y, num_iterations=20, nonnegativity=True)
        assert (res.x >= 0).all()

    def test_relaxation(self, consistent_problem):
        op, _, y = consistent_problem
        res_low = sirt(op, y, num_iterations=10, relaxation=0.3)
        res_std = sirt(op, y, num_iterations=10, relaxation=1.0)
        assert res_std.residual_norms[-1] < res_low.residual_norms[-1]

    def test_works_without_sum_methods(self, consistent_problem):
        op, _, y = consistent_problem

        class Bare:
            num_rays = op.num_rays
            num_pixels = op.num_pixels
            forward = staticmethod(op.forward)
            adjoint = staticmethod(op.adjoint)

        res = sirt(Bare(), y, num_iterations=30)
        assert res.residual_norms[-1] < res.residual_norms[0]

    def test_wrong_length_rejected(self, overdetermined_op):
        with pytest.raises(ValueError):
            sirt(overdetermined_op, np.zeros(3))


class TestSGD:
    def test_descends(self, consistent_problem):
        op, _, y = consistent_problem
        res = sgd(op, y, num_iterations=60, batch_fraction=0.3, seed=0)
        assert res.residual_norms[-1] < 0.5 * res.residual_norms[0]

    def test_full_batch_equals_gradient_descent(self, consistent_problem):
        op, _, y = consistent_problem
        res = sgd(op, y, num_iterations=20, batch_fraction=1.0, seed=0)
        r = np.asarray(res.residual_norms)
        assert np.all(np.diff(r) <= 1e-8)  # deterministic descent

    def test_uses_subset_interface_when_available(self, consistent_problem):
        op, _, y = consistent_problem
        calls = []

        class WithSubset:
            num_rays = op.num_rays
            num_pixels = op.num_pixels
            forward = staticmethod(op.forward)
            adjoint = staticmethod(op.adjoint)
            row_sums = staticmethod(op.row_sums)

            def row_subset_forward(self, x, rows):
                calls.append(len(rows))
                sub = op.matrix.permute(np.asarray(rows), None)
                return sub.spmv(np.asarray(x, dtype=np.float32))

            def row_subset_adjoint(self, y_rows, rows):
                sub = op.matrix.permute(np.asarray(rows), None)
                return scan_transpose(sub).spmv(np.asarray(y_rows, dtype=np.float32))

        sgd(WithSubset(), y, num_iterations=3, batch_fraction=0.2, seed=1)
        assert len(calls) == 3

    def test_invalid_batch_fraction(self, overdetermined_op):
        with pytest.raises(ValueError):
            sgd(overdetermined_op, np.zeros(150), batch_fraction=0.0)


class TestLCurve:
    def test_corner_on_synthetic_l(self):
        """A sharp synthetic L: fast residual drop then solution-norm
        blow-up at index 10."""
        r = np.concatenate([np.geomspace(1.0, 1e-2, 11), np.full(10, 9e-3)])
        s = np.concatenate([np.linspace(1.0, 2.0, 11), np.geomspace(2.0, 50.0, 10)])
        corner = lcurve_corner(r, s)
        assert 8 <= corner <= 13

    def test_short_series(self):
        assert lcurve_corner(np.array([1.0]), np.array([1.0])) == 0
        assert lcurve_corner(np.array([1.0, 0.5]), np.array([1.0, 2.0])) == 1

    def test_flat_curve_returns_last_index(self):
        """Degenerate curves (no positive curvature anywhere) mean "no
        corner reached": keep iterating, don't stop at iteration 0."""
        assert lcurve_corner(np.ones(40), np.ones(40)) == 39
        assert lcurve_corner(np.full(10, 2.0), np.full(10, 3.0)) == 9

    def test_overfit_onset(self):
        r = np.array([1.0, 0.5, 0.25, 0.249, 0.2489, 0.2488])
        s = np.array([1.0, 1.5, 1.8, 1.9, 2.2, 2.6])
        onset = overfit_onset(r, s, residual_tol=1e-2)
        assert onset == 3

    def test_overfit_never_triggers(self):
        r = np.geomspace(1, 1e-6, 10)
        s = np.full(10, 1.0)
        assert overfit_onset(r, s) == 9

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            overfit_onset(np.zeros(3), np.zeros(4))


class TestPublicMatrixOperator:
    def test_builds_transpose_automatically(self, rng):
        from repro.solvers import MatrixOperator

        S = sp.random(20, 15, density=0.3, random_state=rng, format="csr", dtype=np.float32)
        op = MatrixOperator(CSRMatrix.from_scipy(S))
        assert op.num_rays == 20 and op.num_pixels == 15
        x = rng.random(15).astype(np.float32)
        y = rng.random(20).astype(np.float32)
        np.testing.assert_allclose(op.forward(x), S @ x, atol=1e-4)
        np.testing.assert_allclose(op.adjoint(y), S.T @ y, atol=1e-4)

    def test_accepts_explicit_transpose(self, rng):
        from repro.solvers import MatrixOperator

        S = sp.random(12, 9, density=0.4, random_state=rng, format="csr", dtype=np.float32)
        A = CSRMatrix.from_scipy(S)
        op = MatrixOperator(A, transpose=scan_transpose(A))
        assert op.transpose.shape == (9, 12)

    def test_shape_mismatch_rejected(self, rng):
        from repro.solvers import MatrixOperator

        S = sp.random(12, 9, density=0.4, random_state=rng, format="csr", dtype=np.float32)
        A = CSRMatrix.from_scipy(S)
        with pytest.raises(ValueError):
            MatrixOperator(A, transpose=A)

    def test_drives_every_solver(self, rng):
        from repro.solvers import MatrixOperator

        S = sp.random(60, 30, density=0.3, random_state=rng, format="csr", dtype=np.float32)
        S.data[:] = np.abs(S.data) + 0.1
        op = MatrixOperator(CSRMatrix.from_scipy(S))
        x_true = rng.random(30)
        y = op.forward(x_true.astype(np.float32))
        for solver, kwargs in ((cgls, {}), (sirt, {}), (sgd, {"seed": 0})):
            res = solver(op, y, num_iterations=20, **kwargs)
            assert res.residual_norms[-1] < res.residual_norms[0]


class TestMLEM:
    def test_converges_on_nonnegative_system(self, rng):
        from repro.solvers import mlem

        S = sp.random(120, 50, density=0.25, random_state=rng, format="csr",
                      dtype=np.float32)
        S.data[:] = np.abs(S.data) + 0.1
        from repro.solvers import MatrixOperator

        op = MatrixOperator(CSRMatrix.from_scipy(S))
        x_true = rng.random(50) + 0.1
        y = op.forward(x_true.astype(np.float32))
        res = mlem(op, y, num_iterations=200)
        assert res.residual_norms[-1] < 0.05 * res.residual_norms[0]
        assert (res.x >= 0).all()

    def test_preserves_nonnegativity_on_noisy_data(self, consistent_problem, rng):
        from repro.solvers import mlem

        op, _, y = consistent_problem
        noisy = np.maximum(y + rng.normal(scale=0.1 * y.max(), size=y.shape), 0.0)
        res = mlem(op, noisy, num_iterations=30)
        assert (res.x >= 0).all()
        assert res.residual_norms[-1] < res.residual_norms[0]

    def test_zero_sensitivity_pixels_stay_zero(self):
        from repro.solvers import MatrixOperator, mlem

        dense = np.zeros((4, 3), dtype=np.float32)
        dense[:, 0] = 1.0
        dense[:, 1] = 2.0  # column 2 never measured
        op = MatrixOperator(CSRMatrix.from_scipy(sp.csr_matrix(dense)))
        res = mlem(op, np.ones(4), num_iterations=10)
        assert res.x[2] == 0.0

    def test_negative_data_rejected(self, consistent_problem):
        from repro.solvers import mlem

        op, _, y = consistent_problem
        bad = y.copy()
        bad[0] = -1.0
        with pytest.raises(ValueError):
            mlem(op, bad)

    def test_nonpositive_init_rejected(self, consistent_problem):
        from repro.solvers import mlem

        op, _, y = consistent_problem
        with pytest.raises(ValueError):
            mlem(op, y, x0=np.zeros(op.num_pixels))
