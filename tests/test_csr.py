"""Tests for the CSR container and baseline SpMV kernel."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CSRMatrix, csr_row_sums
from repro.sparse.csr import _concat_ranges


def _random_sparse(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    return sp.random(rows, cols, density=density, random_state=rng, format="csr", dtype=np.float32)


class TestContainer:
    def test_from_to_scipy_roundtrip(self):
        S = _random_sparse(20, 30, 0.1, 0)
        A = CSRMatrix.from_scipy(S)
        assert A.shape == (20, 30)
        assert A.nnz == S.nnz
        np.testing.assert_allclose(A.to_scipy().toarray(), S.toarray(), atol=1e-6)

    def test_dtypes(self):
        A = CSRMatrix.from_scipy(_random_sparse(5, 5, 0.3, 1))
        assert A.displ.dtype == np.int64
        assert A.ind.dtype == np.int32
        assert A.val.dtype == np.float32

    def test_row_nnz(self):
        S = sp.csr_matrix(np.array([[1, 0, 2], [0, 0, 0], [3, 4, 5]], dtype=np.float32))
        A = CSRMatrix.from_scipy(S)
        np.testing.assert_array_equal(A.row_nnz(), [2, 0, 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            CSRMatrix(displ=np.array([0, 2]), ind=np.array([0]), val=np.array([1.0]), num_cols=3)
        with pytest.raises(ValueError):
            CSRMatrix(displ=np.array([0, 1]), ind=np.array([0, 1]), val=np.array([1.0]), num_cols=3)


class TestSpMV:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scipy(self, seed):
        S = _random_sparse(60, 45, 0.12, seed)
        A = CSRMatrix.from_scipy(S)
        x = np.random.default_rng(seed).random(45).astype(np.float32)
        np.testing.assert_allclose(A.spmv(x), S @ x, atol=1e-4)

    def test_empty_rows_are_zero(self):
        S = sp.csr_matrix((3, 4), dtype=np.float32)
        A = CSRMatrix.from_scipy(S)
        np.testing.assert_array_equal(A.spmv(np.ones(4, dtype=np.float32)), np.zeros(3))

    def test_first_row_empty(self):
        """reduceat's empty-segment pitfall: an empty row 0 must not
        steal the first product."""
        dense = np.zeros((3, 3), dtype=np.float32)
        dense[1, 0] = 5.0
        A = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        y = A.spmv(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(y, [0.0, 5.0, 0.0])

    def test_wrong_length_rejected(self):
        A = CSRMatrix.from_scipy(_random_sparse(4, 6, 0.5, 0))
        with pytest.raises(ValueError):
            A.spmv(np.ones(5, dtype=np.float32))

    @given(seed=st.integers(0, 1000), rows=st.integers(1, 40), cols=st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_matches_scipy_property(self, seed, rows, cols):
        S = _random_sparse(rows, cols, 0.2, seed)
        A = CSRMatrix.from_scipy(S)
        x = np.random.default_rng(seed + 1).standard_normal(cols).astype(np.float32)
        np.testing.assert_allclose(A.spmv(x), S @ x, atol=1e-3)

    def test_row_col_sums(self):
        dense = np.array([[1, 2, 0], [0, 0, 3]], dtype=np.float32)
        A = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        np.testing.assert_allclose(A.row_sums(), [3, 3])
        np.testing.assert_allclose(A.col_sums(), [1, 2, 3])


class TestCsrRowSums:
    def test_basic(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        displ = np.array([0, 2, 2, 4])
        np.testing.assert_allclose(csr_row_sums(vals, displ, 3), [3.0, 0.0, 7.0])

    def test_all_empty(self):
        np.testing.assert_array_equal(
            csr_row_sums(np.empty(0), np.zeros(4, dtype=np.int64), 3), np.zeros(3)
        )

    def test_trailing_empty_rows(self):
        vals = np.array([5.0])
        displ = np.array([0, 1, 1, 1])
        np.testing.assert_allclose(csr_row_sums(vals, displ, 3), [5.0, 0.0, 0.0])


class TestPermute:
    def test_row_permutation(self):
        S = _random_sparse(10, 8, 0.3, 2)
        A = CSRMatrix.from_scipy(S)
        perm = np.random.default_rng(0).permutation(10)
        x = np.random.default_rng(1).random(8).astype(np.float32)
        np.testing.assert_allclose(A.permute(perm, None).spmv(x), (S @ x)[perm], atol=1e-5)

    def test_col_permutation(self):
        S = _random_sparse(10, 8, 0.3, 3)
        A = CSRMatrix.from_scipy(S)
        colperm = np.random.default_rng(0).permutation(8)
        rank = np.empty(8, dtype=np.int64)
        rank[colperm] = np.arange(8)
        Ap = A.permute(None, rank)
        x = np.random.default_rng(1).random(8).astype(np.float32)
        xp = np.empty_like(x)
        xp[rank] = x
        np.testing.assert_allclose(Ap.spmv(xp), S @ x, atol=1e-5)

    def test_row_subset(self):
        """permute with a non-surjective row list extracts a submatrix."""
        S = _random_sparse(10, 8, 0.4, 4)
        A = CSRMatrix.from_scipy(S)
        rows = np.array([7, 2, 2, 0])
        x = np.random.default_rng(2).random(8).astype(np.float32)
        np.testing.assert_allclose(A.permute(rows, None).spmv(x), (S @ x)[rows], atol=1e-5)

    def test_sort_rows_by_index(self):
        S = _random_sparse(12, 12, 0.4, 5)
        A = CSRMatrix.from_scipy(S)
        perm = np.random.default_rng(0).permutation(12)
        rank = np.empty(12, dtype=np.int64)
        rank[perm] = np.arange(12)
        shuffled = A.permute(None, rank)
        sorted_ = shuffled.sort_rows_by_index()
        for r in range(12):
            seg = sorted_.ind[sorted_.displ[r] : sorted_.displ[r + 1]]
            assert np.all(np.diff(seg) >= 0)
        x = np.random.default_rng(3).random(12).astype(np.float32)
        np.testing.assert_allclose(sorted_.spmv(x), shuffled.spmv(x), atol=1e-5)


class TestConcatRanges:
    def test_basic(self):
        out = _concat_ranges(np.array([5, 0, 10]), np.array([2, 3, 1]))
        np.testing.assert_array_equal(out, [5, 6, 0, 1, 2, 10])

    def test_with_zero_counts(self):
        out = _concat_ranges(np.array([3, 7, 1]), np.array([0, 2, 0]))
        np.testing.assert_array_equal(out, [7, 8])

    def test_empty(self):
        assert _concat_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0

    def test_all_zero(self):
        assert _concat_ranges(np.array([1, 2]), np.array([0, 0])).size == 0
