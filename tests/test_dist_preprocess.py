"""Tests for the MPI-parallel preprocessing pipeline (paper Section 3.5)."""

import numpy as np
import pytest

from repro.dist import (
    DistributedOperator,
    SimComm,
    decompose_both,
    distributed_preprocess,
)
from repro.geometry import ParallelBeamGeometry
from repro.sparse import CSRMatrix
from repro.trace import build_projection_matrix


@pytest.fixture(scope="module")
def geometry():
    return ParallelBeamGeometry(36, 24)


def _reference(geometry, op):
    """Globally-built operator sharing op's decompositions."""
    matrix = (
        CSRMatrix.from_scipy(build_projection_matrix(geometry))
        .permute(op.sino_dec.ordering.perm, op.tomo_dec.ordering.rank)
        .sort_rows_by_index()
    )
    return DistributedOperator(matrix, op.tomo_dec, op.sino_dec), matrix


class TestDistributedPreprocess:
    @pytest.mark.parametrize("ranks", [1, 2, 5, 8])
    def test_matches_global_build(self, geometry, ranks, rng):
        op = distributed_preprocess(geometry, ranks)
        ref, matrix = _reference(geometry, op)
        x = rng.random(op.num_pixels).astype(np.float32)
        y = rng.random(op.num_rays).astype(np.float32)
        np.testing.assert_allclose(op.forward(x), ref.forward(x), rtol=1e-4, atol=1e-4)
        np.testing.assert_allclose(op.adjoint(y), ref.adjoint(y), rtol=1e-4, atol=1e-4)
        assert op.per_rank_nnz().sum() == matrix.nnz

    def test_no_global_matrix_held(self, geometry):
        """The point of distributed preprocessing: no rank (and not the
        operator) ever holds the full matrix."""
        op = distributed_preprocess(geometry, 4)
        assert op.matrix is None
        total = op.per_rank_nnz().sum()
        assert all(r.partial_matrix.nnz < total for r in op.ranks)

    def test_row_col_sums_without_matrix(self, geometry):
        op = distributed_preprocess(geometry, 3)
        ref, matrix = _reference(geometry, op)
        np.testing.assert_allclose(op.row_sums(), matrix.row_sums(), rtol=1e-4, atol=1e-4)
        np.testing.assert_allclose(op.col_sums(), matrix.col_sums(), rtol=1e-4, atol=1e-4)

    def test_solver_integration(self, geometry, rng):
        """The distributed-preprocessed operator plugs into CGLS."""
        from repro.solvers import cgls

        op = distributed_preprocess(geometry, 4)
        x_true = rng.random(op.num_pixels)
        y = op.forward(x_true.astype(np.float32))
        res = cgls(op, y, num_iterations=50)
        assert res.residual_norms[-1] < 0.05 * res.residual_norms[0]

    def test_preprocessing_traffic_logged(self, geometry):
        comm = SimComm(4)
        distributed_preprocess(geometry, 4, comm=comm)
        # Three triplet streams exchanged once each.
        assert comm.log.collective_calls == 3
        assert comm.log.off_diagonal_volume() > 0

    def test_comm_plan_matches_global_build(self, geometry):
        op = distributed_preprocess(geometry, 6)
        ref, _ = _reference(geometry, op)
        np.testing.assert_array_equal(
            op.communication_matrix(), ref.communication_matrix()
        )

    def test_validation(self, geometry):
        with pytest.raises(ValueError):
            distributed_preprocess(geometry, 0)
        with pytest.raises(ValueError):
            distributed_preprocess(geometry, 4, comm=SimComm(3))

    def test_rank_data_count_validated(self, geometry):
        op = distributed_preprocess(geometry, 2)
        with pytest.raises(ValueError):
            DistributedOperator(
                None, op.tomo_dec, op.sino_dec, rank_data=op.ranks[:1]
            )
        with pytest.raises(ValueError):
            DistributedOperator(None, op.tomo_dec, op.sino_dec)


class TestMemoryScalability:
    def test_max_rank_nnz_shrinks_with_ranks(self, geometry):
        """The headline property: per-rank matrix memory ~ 1/P."""
        sizes = {}
        for ranks in (1, 2, 4, 8):
            op = distributed_preprocess(geometry, ranks)
            sizes[ranks] = max(r.partial_matrix.nnz for r in op.ranks)
        assert sizes[2] < sizes[1]
        assert sizes[8] < 0.3 * sizes[1]

    def test_touched_rows_overlap_is_the_sqrt_term(self, geometry):
        """Sum of touched rows exceeds the sinogram size by the overlap
        (the MN/sqrt(P) memory term of Table 1), and the overlap grows
        with P."""
        overlaps = []
        for ranks in (2, 8):
            op = distributed_preprocess(geometry, ranks)
            total_touched = sum(r.touched_rows.shape[0] for r in op.ranks)
            overlaps.append(total_touched - op.num_rays)
        assert overlaps[0] >= 0
        assert overlaps[1] > overlaps[0]
