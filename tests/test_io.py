"""Tests for operator persistence (save/load roundtrip)."""

import numpy as np
import pytest

from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.io import load_operator, save_operator


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    g = ParallelBeamGeometry(30, 20)
    op, _ = preprocess(
        g, config=OperatorConfig(kernel="buffered", partition_size=32, buffer_bytes=2048)
    )
    path = tmp_path_factory.mktemp("ops") / "op.npz"
    save_operator(path, op)
    return g, op, path


class TestRoundtrip:
    def test_geometry_restored(self, saved):
        _, op, path = saved
        loaded = load_operator(path)
        assert loaded.geometry.sinogram_shape == op.geometry.sinogram_shape
        assert loaded.geometry.grid.n == op.geometry.grid.n
        assert loaded.geometry.angle_range == op.geometry.angle_range

    def test_matrix_identical(self, saved):
        _, op, path = saved
        loaded = load_operator(path)
        np.testing.assert_array_equal(loaded.matrix.displ, op.matrix.displ)
        np.testing.assert_array_equal(loaded.matrix.ind, op.matrix.ind)
        np.testing.assert_array_equal(loaded.matrix.val, op.matrix.val)

    def test_kernels_behave_identically(self, saved, rng):
        _, op, path = saved
        loaded = load_operator(path)
        x = rng.random(op.num_pixels).astype(np.float32)
        y = rng.random(op.num_rays).astype(np.float32)
        np.testing.assert_allclose(loaded.forward(x), op.forward(x), rtol=1e-6)
        np.testing.assert_allclose(loaded.adjoint(y), op.adjoint(y), rtol=1e-6)

    def test_orderings_restored(self, saved):
        _, op, path = saved
        loaded = load_operator(path)
        assert loaded.tomo_ordering.name == op.tomo_ordering.name
        np.testing.assert_array_equal(loaded.tomo_ordering.perm, op.tomo_ordering.perm)
        np.testing.assert_array_equal(loaded.sino_ordering.rank, op.sino_ordering.rank)

    def test_config_restored(self, saved):
        _, op, path = saved
        loaded = load_operator(path)
        assert loaded.config == op.config
        assert loaded.buffered_forward is not None

    def test_reconstruction_through_loaded_operator(self, saved, rng):
        g, op, path = saved
        from repro.core import reconstruct

        loaded = load_operator(path)
        sino = rng.random(g.sinogram_shape)
        a = reconstruct(sino, g, iterations=5, operator=op)
        b = reconstruct(sino, g, iterations=5, operator=loaded)
        np.testing.assert_allclose(a.image, b.image, rtol=1e-5, atol=1e-7)

    def test_csr_kernel_config(self, tmp_path):
        g = ParallelBeamGeometry(10, 8)
        op, _ = preprocess(g, config=OperatorConfig(kernel="csr"))
        path = tmp_path / "csr.npz"
        save_operator(path, op)
        loaded = load_operator(path)
        assert loaded.config.kernel == "csr"
        assert loaded.buffered_forward is None

    def test_version_check(self, saved, tmp_path):
        _, op, path = saved
        import numpy as np

        with np.load(path) as data:
            arrays = dict(data)
        arrays["format_version"] = np.int64(99)
        bad = tmp_path / "bad.npz"
        np.savez(bad, **arrays)
        with pytest.raises(ValueError):
            load_operator(bad)
