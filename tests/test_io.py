"""Tests for operator persistence (save/load roundtrip)."""

import numpy as np
import pytest

from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.io import (
    FORMAT_VERSION,
    OperatorFormatError,
    OperatorIntegrityError,
    load_operator,
    save_operator,
)


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    g = ParallelBeamGeometry(30, 20)
    op, _ = preprocess(
        g, config=OperatorConfig(kernel="buffered", partition_size=32, buffer_bytes=2048)
    )
    path = tmp_path_factory.mktemp("ops") / "op.npz"
    save_operator(path, op)
    return g, op, path


class TestRoundtrip:
    def test_geometry_restored(self, saved):
        _, op, path = saved
        loaded = load_operator(path)
        assert loaded.geometry.sinogram_shape == op.geometry.sinogram_shape
        assert loaded.geometry.grid.n == op.geometry.grid.n
        assert loaded.geometry.angle_range == op.geometry.angle_range

    def test_matrix_identical(self, saved):
        _, op, path = saved
        loaded = load_operator(path)
        np.testing.assert_array_equal(loaded.matrix.displ, op.matrix.displ)
        np.testing.assert_array_equal(loaded.matrix.ind, op.matrix.ind)
        np.testing.assert_array_equal(loaded.matrix.val, op.matrix.val)

    def test_kernels_behave_identically(self, saved, rng):
        _, op, path = saved
        loaded = load_operator(path)
        x = rng.random(op.num_pixels).astype(np.float32)
        y = rng.random(op.num_rays).astype(np.float32)
        np.testing.assert_allclose(loaded.forward(x), op.forward(x), rtol=1e-6)
        np.testing.assert_allclose(loaded.adjoint(y), op.adjoint(y), rtol=1e-6)

    def test_orderings_restored(self, saved):
        _, op, path = saved
        loaded = load_operator(path)
        assert loaded.tomo_ordering.name == op.tomo_ordering.name
        np.testing.assert_array_equal(loaded.tomo_ordering.perm, op.tomo_ordering.perm)
        np.testing.assert_array_equal(loaded.sino_ordering.rank, op.sino_ordering.rank)

    def test_config_restored(self, saved):
        _, op, path = saved
        loaded = load_operator(path)
        assert loaded.config == op.config
        assert loaded.buffered_forward is not None

    def test_reconstruction_through_loaded_operator(self, saved, rng):
        g, op, path = saved
        from repro.core import reconstruct

        loaded = load_operator(path)
        sino = rng.random(g.sinogram_shape)
        a = reconstruct(sino, g, iterations=5, operator=op)
        b = reconstruct(sino, g, iterations=5, operator=loaded)
        np.testing.assert_allclose(a.image, b.image, rtol=1e-5, atol=1e-7)

    def test_csr_kernel_config(self, tmp_path):
        g = ParallelBeamGeometry(10, 8)
        op, _ = preprocess(g, config=OperatorConfig(kernel="csr"))
        path = tmp_path / "csr.npz"
        save_operator(path, op)
        loaded = load_operator(path)
        assert loaded.config.kernel == "csr"
        assert loaded.buffered_forward is None

    def test_version_check(self, saved, tmp_path):
        _, op, path = saved
        import numpy as np

        with np.load(path) as data:
            arrays = dict(data)
        arrays["format_version"] = np.int64(99)
        bad = tmp_path / "bad.npz"
        np.savez(bad, **arrays)
        with pytest.raises(ValueError):
            load_operator(bad)

    @pytest.mark.parametrize("kernel", ["csr", "buffered", "ell"])
    def test_all_kernels_bit_identical(self, tmp_path, rng, kernel):
        """v2 persists the kernel layouts themselves, so the loaded
        operator must produce *bit-identical* results, not just close."""
        g = ParallelBeamGeometry(30, 20)
        op, _ = preprocess(
            g,
            config=OperatorConfig(kernel=kernel, partition_size=32, buffer_bytes=2048),
        )
        loaded = load_operator(save_operator(tmp_path / f"{kernel}.npz", op))
        np.testing.assert_array_equal(loaded.transpose.displ, op.transpose.displ)
        np.testing.assert_array_equal(loaded.transpose.ind, op.transpose.ind)
        np.testing.assert_array_equal(loaded.transpose.val, op.transpose.val)
        x = rng.random(op.num_pixels).astype(np.float32)
        y = rng.random(op.num_rays).astype(np.float32)
        np.testing.assert_array_equal(loaded.forward(x), op.forward(x))
        np.testing.assert_array_equal(loaded.adjoint(y), op.adjoint(y))
        if kernel == "buffered":
            np.testing.assert_array_equal(
                loaded.buffered_forward.map, op.buffered_forward.map
            )
            np.testing.assert_array_equal(
                loaded.buffered_adjoint.ind, op.buffered_adjoint.ind
            )
        if kernel == "ell":
            assert len(loaded.ell_forward.ind_slabs) == len(op.ell_forward.ind_slabs)

    def test_uncompressed_roundtrip(self, saved, tmp_path, rng):
        _, op, path = saved
        fast = save_operator(tmp_path / "fast.npz", op, compress=False)
        assert fast.stat().st_size >= path.stat().st_size  # no zlib
        loaded = load_operator(fast)
        x = rng.random(op.num_pixels).astype(np.float32)
        np.testing.assert_array_equal(loaded.forward(x), op.forward(x))

    def test_npz_suffix_appended(self, saved, tmp_path):
        _, op, _ = saved
        written = save_operator(tmp_path / "bare", op)
        assert written.name == "bare.npz"
        assert written.exists()

    def test_no_temp_files_left_behind(self, saved, tmp_path):
        _, op, _ = saved
        save_operator(tmp_path / "clean.npz", op)
        assert [p.name for p in tmp_path.glob("*.tmp-*")] == []


class TestIntegrity:
    """Corrupt, truncated, or stale files fail with typed errors."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_operator(tmp_path / "nope.npz")

    def test_version_mismatch_is_format_error(self, saved, tmp_path):
        _, _, path = saved
        with np.load(path) as data:
            arrays = dict(data)
        arrays["format_version"] = np.int64(FORMAT_VERSION + 40)
        bad = tmp_path / "future.npz"
        np.savez(bad, **arrays)
        with pytest.raises(OperatorFormatError, match="unsupported"):
            load_operator(bad)

    def test_flipped_bytes_fail_checksum(self, saved, tmp_path):
        _, op, _ = saved
        path = save_operator(tmp_path / "rot.npz", op, compress=False)
        blob = bytearray(path.read_bytes())
        mid = len(blob) // 2
        blob[mid] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(OperatorIntegrityError):
            load_operator(path)

    def test_truncated_file(self, saved, tmp_path):
        _, _, path = saved
        cut = tmp_path / "cut.npz"
        cut.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(OperatorIntegrityError, match="not a readable"):
            load_operator(cut)

    def test_wrong_file_type(self, tmp_path):
        impostor = tmp_path / "impostor.npz"
        impostor.write_text("just some text")
        with pytest.raises(OperatorIntegrityError):
            load_operator(impostor)

    def test_tampered_array_detected(self, saved, tmp_path):
        """Valid archive, valid version, silently modified values."""
        _, _, path = saved
        with np.load(path) as data:
            arrays = dict(data)
        arrays["val"] = arrays["val"].copy()
        arrays["val"][0] += 1.0
        tampered = tmp_path / "tampered.npz"
        np.savez(tampered, **arrays)
        with pytest.raises(OperatorIntegrityError, match="checksum mismatch"):
            load_operator(tampered)


class TestV1BackCompat:
    def test_v1_archive_rebuilds_layouts(self, saved, tmp_path, rng):
        """A v1 file (matrix only, no checksum) still loads — the
        transpose and kernel layouts are rebuilt deterministically."""
        _, op, path = saved
        with np.load(path) as data:
            arrays = dict(data)
        v2_only = [
            name
            for name in arrays
            if name == "checksum"
            or name.startswith(("t_", "bf_", "ba_", "ef_", "ea_"))
        ]
        for name in v2_only:
            del arrays[name]
        arrays["format_version"] = np.int64(1)
        old = tmp_path / "v1.npz"
        np.savez(old, **arrays)

        loaded = load_operator(old)
        np.testing.assert_array_equal(loaded.transpose.displ, op.transpose.displ)
        np.testing.assert_array_equal(loaded.transpose.val, op.transpose.val)
        assert loaded.buffered_forward is not None
        x = rng.random(op.num_pixels).astype(np.float32)
        y = rng.random(op.num_rays).astype(np.float32)
        np.testing.assert_array_equal(loaded.forward(x), op.forward(x))
        np.testing.assert_array_equal(loaded.adjoint(y), op.adjoint(y))
