"""Tests for the classic Hilbert curve and its square symmetries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import (
    SYMMETRIES,
    apply_symmetry,
    hilbert_curve,
    hilbert_d2xy,
    hilbert_xy2d,
    symmetry_endpoints,
)


class TestRoundtrip:
    @pytest.mark.parametrize("order", range(6))
    def test_d2xy_xy2d_roundtrip(self, order):
        n = 1 << (2 * order)
        d = np.arange(n)
        x, y = hilbert_d2xy(order, d)
        np.testing.assert_array_equal(hilbert_xy2d(order, x, y), d)

    @given(order=st.integers(0, 7), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_xy2d_d2xy_roundtrip_random(self, order, seed):
        rng = np.random.default_rng(seed)
        side = 1 << order
        x = rng.integers(0, side, size=20)
        y = rng.integers(0, side, size=20)
        d = hilbert_xy2d(order, x, y)
        x2, y2 = hilbert_d2xy(order, d)
        np.testing.assert_array_equal(x, x2)
        np.testing.assert_array_equal(y, y2)

    def test_order_zero(self):
        assert hilbert_xy2d(0, np.array([0]), np.array([0]))[0] == 0


class TestCurveProperties:
    @pytest.mark.parametrize("order", range(1, 6))
    def test_consecutive_cells_are_adjacent(self, order):
        coords = hilbert_curve(order)
        steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    @pytest.mark.parametrize("order", range(1, 5))
    def test_visits_every_cell_once(self, order):
        coords = hilbert_curve(order)
        side = 1 << order
        flat = coords[:, 1] * side + coords[:, 0]
        assert np.unique(flat).shape[0] == side * side

    def test_canonical_endpoints(self):
        for order in range(1, 5):
            coords = hilbert_curve(order)
            side = 1 << order
            assert tuple(coords[0]) == (0, 0)
            assert tuple(coords[-1]) == (side - 1, 0)

    @pytest.mark.parametrize("order", [2, 3])
    def test_locality_beats_row_major(self, order):
        """Aligned runs of 4^j consecutive indices form compact blocks."""
        coords = hilbert_curve(order)
        block = 4 ** (order - 1)
        for start in range(0, len(coords), block):
            chunk = coords[start : start + block]
            w = chunk[:, 0].max() - chunk[:, 0].min() + 1
            h = chunk[:, 1].max() - chunk[:, 1].min() + 1
            assert w * h == block  # exactly a square sub-block

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_xy2d(2, np.array([4]), np.array([0]))
        with pytest.raises(ValueError):
            hilbert_d2xy(2, np.array([16]))
        with pytest.raises(ValueError):
            hilbert_xy2d(-1, np.array([0]), np.array([0]))


class TestSymmetries:
    @pytest.mark.parametrize("name", SYMMETRIES)
    def test_symmetry_is_bijective(self, name):
        side = 8
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        tx, ty = apply_symmetry(name, xs.ravel(), ys.ravel(), side)
        flat = ty * side + tx
        assert np.unique(flat).shape[0] == side * side

    @pytest.mark.parametrize("name", SYMMETRIES)
    def test_symmetry_preserves_adjacency(self, name):
        coords = hilbert_curve(3)
        tx, ty = apply_symmetry(name, coords[:, 0], coords[:, 1], 8)
        steps = np.abs(np.diff(tx)) + np.abs(np.diff(ty))
        assert np.all(steps == 1)

    def test_unknown_symmetry_rejected(self):
        with pytest.raises(ValueError):
            apply_symmetry("rot45", np.array([0]), np.array([0]), 4)

    def test_endpoint_table_covers_all_edge_corner_pairs(self):
        table = symmetry_endpoints(3)
        assert len(table) == 16  # 8 symmetries x (forward, reversed)
        m = 7
        corners = {(0, 0), (m, 0), (0, m), (m, m)}
        for entry, exit_ in table.values():
            assert entry in corners and exit_ in corners
            # entry and exit share an edge (differ in exactly one coord)
            assert (entry[0] == exit_[0]) != (entry[1] == exit_[1])

    def test_reversed_swaps_endpoints(self):
        table = symmetry_endpoints(2)
        for name in SYMMETRIES:
            fwd = table[(False, name)]
            rev = table[(True, name)]
            assert fwd == (rev[1], rev[0])
