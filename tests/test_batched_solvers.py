"""Tests for the batched multi-RHS solvers.

Core contract: column ``j`` of a batched solve is **bit-identical**
(``np.array_equal``, not approx) to the single-slice solve of column
``j`` — batching changes the schedule, never the arithmetic.  On top of
that, per-column convergence masks must freeze each column at its own
stopping iteration.
"""

import numpy as np
import pytest

from repro.core import OperatorConfig, preprocess
from repro.geometry import ParallelBeamGeometry
from repro.solvers import (
    BatchSolveResult,
    cgls,
    cgls_batch,
    mlem,
    mlem_batch,
    sirt,
    sirt_batch,
)


@pytest.fixture(scope="module")
def op():
    operator, _ = preprocess(
        ParallelBeamGeometry(36, 24),
        config=OperatorConfig(kernel="buffered", partition_size=32, buffer_bytes=4096),
    )
    return operator


@pytest.fixture()
def Y(op, rng):
    return np.abs(rng.normal(size=(op.num_rays, 4)))


class LoopOnlyOperator:
    """ProjectionOperator without batch methods — exercises the fallback."""

    def __init__(self, inner):
        self.inner = inner

    @property
    def solve_dtype(self):
        # Forward the inner operator's precision so the loop fallback
        # and the batch path solve in the same dtype (matters when
        # REPRO_DTYPE puts the suite on the fp32 path).
        return getattr(self.inner, "solve_dtype", None)

    @property
    def num_rays(self):
        return self.inner.num_rays

    @property
    def num_pixels(self):
        return self.inner.num_pixels

    def forward(self, x):
        return self.inner.forward(x)

    def adjoint(self, y):
        return self.inner.adjoint(y)

    def row_sums(self):
        return self.inner.row_sums()

    def col_sums(self):
        return self.inner.col_sums()


class TestCGLSBatch:
    def test_bit_exact_per_column(self, op, Y):
        batch = cgls_batch(op, Y, num_iterations=10)
        for j in range(Y.shape[1]):
            single = cgls(op, Y[:, j], num_iterations=10)
            assert np.array_equal(batch.X[:, j], single.x)
            col = batch.column(j)
            assert col.residual_norms == single.residual_norms
            assert col.solution_norms == single.solution_norms
            assert col.iterations == single.iterations

    def test_bit_exact_with_tolerance(self, op, Y):
        """Per-column stopping: each column freezes exactly where its
        single-slice counterpart stops, and keeps those bits."""
        tol = 1e-2
        batch = cgls_batch(op, Y, num_iterations=40, tolerance=tol)
        stopped = []
        for j in range(Y.shape[1]):
            single = cgls(op, Y[:, j], num_iterations=40, tolerance=tol)
            assert np.array_equal(batch.X[:, j], single.x)
            assert batch.iterations[j] == single.iterations
            assert bool(batch.converged[j]) == single.converged
            stopped.append(single.iterations)
        # The test is only meaningful if columns actually stop at
        # different iterations; random RHS make that overwhelmingly likely.
        assert len(set(stopped)) > 1 or all(s == 40 for s in stopped)

    def test_zero_column_converges_immediately(self, op, Y):
        Yz = Y.copy()
        Yz[:, 1] = 0.0
        batch = cgls_batch(op, Yz, num_iterations=5)
        assert batch.converged[1]
        assert batch.iterations[1] == 0
        assert np.array_equal(batch.X[:, 1], np.zeros(op.num_pixels))
        # Other columns are unaffected by the frozen one.
        single = cgls(op, Yz[:, 0], num_iterations=5)
        assert np.array_equal(batch.X[:, 0], single.x)

    def test_loop_fallback_operator(self, op, Y):
        """An operator without batch methods gives identical results."""
        loop = cgls_batch(LoopOnlyOperator(op), Y, num_iterations=6)
        batch = cgls_batch(op, Y, num_iterations=6)
        assert np.array_equal(loop.X, batch.X)

    def test_result_shapes(self, op, Y):
        batch = cgls_batch(op, Y, num_iterations=5)
        assert isinstance(batch, BatchSolveResult)
        assert batch.num_rhs == Y.shape[1]
        assert batch.X.shape == (op.num_pixels, Y.shape[1])
        assert batch.residual_norms.shape == (6, Y.shape[1])
        assert len(batch.stop_reasons) == Y.shape[1]

    def test_rejects_1d(self, op):
        with pytest.raises(ValueError, match="slab"):
            cgls_batch(op, np.zeros(op.num_rays))

    def test_rejects_wrong_rows(self, op):
        with pytest.raises(ValueError, match="rows"):
            cgls_batch(op, np.zeros((op.num_rays + 1, 2)))


class TestSIRTBatch:
    def test_bit_exact_per_column(self, op, Y):
        batch = sirt_batch(op, Y, num_iterations=8)
        for j in range(Y.shape[1]):
            single = sirt(op, Y[:, j], num_iterations=8)
            assert np.array_equal(batch.X[:, j], single.x)
            col = batch.column(j)
            assert col.residual_norms == single.residual_norms

    def test_bit_exact_with_relaxation_and_nonnegativity(self, op, Y):
        batch = sirt_batch(op, Y, num_iterations=6, relaxation=0.7, nonnegativity=True)
        for j in range(Y.shape[1]):
            single = sirt(
                op, Y[:, j], num_iterations=6, relaxation=0.7, nonnegativity=True
            )
            assert np.array_equal(batch.X[:, j], single.x)

    def test_tolerance_freezes_columns(self, op, Y):
        Ys = Y.copy()
        Ys[:, 2] *= 1e-6  # tiny column converges (relative) fast
        batch = sirt_batch(op, Ys, num_iterations=30, tolerance=0.5)
        assert batch.iterations.min() < 30 or batch.converged.any()
        # Frozen column keeps the bits it had at its stopping iteration.
        j = int(np.argmin(batch.iterations))
        refer = sirt_batch(op, Ys, num_iterations=int(batch.iterations[j]), tolerance=0.0)
        if batch.converged[j]:
            assert np.array_equal(batch.X[:, j], refer.X[:, j])


class TestMLEMBatch:
    def test_bit_exact_per_column(self, op, Y):
        batch = mlem_batch(op, Y, num_iterations=8)
        for j in range(Y.shape[1]):
            single = mlem(op, Y[:, j], num_iterations=8)
            assert np.array_equal(batch.X[:, j], single.x)

    def test_rejects_negative_measurements(self, op, Y):
        Yn = Y.copy()
        Yn[0, 0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            mlem_batch(op, Yn)

    def test_nonnegative_output(self, op, Y):
        batch = mlem_batch(op, Y, num_iterations=5)
        assert (batch.X >= 0).all()
