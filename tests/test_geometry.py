"""Tests for the grid and parallel-beam geometry."""

import numpy as np
import pytest

from repro.geometry import Grid2D, ParallelBeamGeometry


class TestGrid2D:
    def test_shape_and_counts(self):
        g = Grid2D(8)
        assert g.shape == (8, 8)
        assert g.num_pixels == 64
        assert g.extent == 8.0
        assert g.half_extent == 4.0

    def test_planes_are_centred(self):
        g = Grid2D(4)
        np.testing.assert_allclose(g.x_planes(), [-2, -1, 0, 1, 2])
        np.testing.assert_allclose(g.y_planes(), g.x_planes())

    def test_pixel_size_scales_planes(self):
        g = Grid2D(4, pixel_size=0.5)
        np.testing.assert_allclose(g.x_planes(), [-1, -0.5, 0, 0.5, 1])
        assert g.extent == 2.0

    def test_pixel_index_row_major(self):
        g = Grid2D(5)
        assert g.pixel_index(0, 0) == 0
        assert g.pixel_index(4, 0) == 4
        assert g.pixel_index(0, 1) == 5
        assert g.pixel_index(4, 4) == 24

    def test_contains_mask(self):
        g = Grid2D(3)
        ix = np.array([-1, 0, 2, 3])
        iy = np.array([0, 0, 2, 1])
        np.testing.assert_array_equal(g.contains(ix, iy), [False, True, True, False])

    def test_pixel_centers(self):
        g = Grid2D(2)
        x, y = g.pixel_centers()
        np.testing.assert_allclose(x, [[-0.5, 0.5], [-0.5, 0.5]])
        np.testing.assert_allclose(y, [[-0.5, -0.5], [0.5, 0.5]])

    @pytest.mark.parametrize("n", [0, -3])
    def test_invalid_size_rejected(self, n):
        with pytest.raises(ValueError):
            Grid2D(n)

    def test_invalid_pixel_size_rejected(self):
        with pytest.raises(ValueError):
            Grid2D(4, pixel_size=0.0)


class TestParallelBeamGeometry:
    def test_shapes(self):
        g = ParallelBeamGeometry(10, 8)
        assert g.sinogram_shape == (10, 8)
        assert g.num_rays == 80
        assert g.grid.n == 8

    def test_angles_cover_half_turn(self):
        g = ParallelBeamGeometry(4, 8)
        np.testing.assert_allclose(g.angles(), [0, np.pi / 4, np.pi / 2, 3 * np.pi / 4])

    def test_channel_offsets_symmetric(self):
        g = ParallelBeamGeometry(4, 6)
        s = g.channel_offsets()
        np.testing.assert_allclose(s, -s[::-1])
        assert s.max() == pytest.approx(2.5)

    def test_directions_are_unit_and_orthogonal_to_detector(self):
        g = ParallelBeamGeometry(12, 8)
        d = g.ray_directions()
        a = g.detector_axes()
        np.testing.assert_allclose(np.linalg.norm(d, axis=1), 1.0)
        np.testing.assert_allclose(np.einsum("ij,ij->i", d, a), 0.0, atol=1e-14)

    def test_angle_zero_rays_point_up(self):
        g = ParallelBeamGeometry(4, 8)
        d = g.ray_directions()[0]
        np.testing.assert_allclose(d, [0.0, 1.0], atol=1e-15)

    def test_ray_origins_lie_on_detector_axis(self):
        g = ParallelBeamGeometry(8, 6)
        for ai in range(g.num_angles):
            origins = g.ray_origins(ai)
            axis = g.detector_axes()[ai]
            # Origins must be scalar multiples of the axis.
            cross = origins[:, 0] * axis[1] - origins[:, 1] * axis[0]
            np.testing.assert_allclose(cross, 0.0, atol=1e-12)

    def test_ray_accessor_bounds(self):
        g = ParallelBeamGeometry(4, 4)
        ray = g.ray(1, 2)
        assert ray.angle_index == 1 and ray.channel_index == 2
        with pytest.raises(IndexError):
            g.ray(4, 0)
        with pytest.raises(IndexError):
            g.ray(0, 4)

    def test_ray_index_row_major(self):
        g = ParallelBeamGeometry(5, 7)
        assert g.ray_index(0, 0) == 0
        assert g.ray_index(1, 0) == 7
        assert g.ray_index(4, 6) == 34

    def test_default_grid_matches_channels(self):
        g = ParallelBeamGeometry(3, 9)
        assert g.grid.n == 9

    def test_custom_grid(self):
        grid = Grid2D(16, pixel_size=0.25)
        g = ParallelBeamGeometry(3, 16, grid=grid)
        assert g.grid is grid
        assert g.channel_offsets().max() == pytest.approx((16 / 2 - 0.5) * 0.25)

    @pytest.mark.parametrize("m,n", [(0, 4), (4, 0), (-1, 3)])
    def test_invalid_dims_rejected(self, m, n):
        with pytest.raises(ValueError):
            ParallelBeamGeometry(m, n)
