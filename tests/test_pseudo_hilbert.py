"""Tests for the two-level pseudo-Hilbert ordering (paper Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import choose_tile_size, pseudo_hilbert_order


class TestChooseTileSize:
    def test_power_of_two(self):
        for rows, cols in [(13, 11), (100, 7), (64, 64), (5, 5)]:
            t = choose_tile_size(rows, cols)
            assert t >= 1 and (t & (t - 1)) == 0

    def test_respects_min_tiles(self):
        t = choose_tile_size(64, 64, min_tiles=64)
        tiles = -(-64 // t) * (-(-64 // t))
        assert tiles >= 64

    def test_tile_not_larger_than_domain(self):
        assert choose_tile_size(13, 11) <= 11

    def test_paper_example_13x11(self):
        """Fig. 4: a 13x11 domain covered by 4x4 tiles (12 tiles)."""
        t = choose_tile_size(13, 11, min_tiles=12)
        assert t == 4

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            choose_tile_size(0, 5)


class TestTwoLevelOrdering:
    @pytest.mark.parametrize(
        "rows,cols,tile",
        [(13, 11, 4), (16, 16, 4), (16, 16, 8), (7, 9, 2), (32, 32, 8), (11, 13, None), (1, 1, 1)],
    )
    def test_is_permutation(self, rows, cols, tile):
        o = pseudo_hilbert_order(rows, cols, tile_size=tile)
        assert np.unique(o.perm).shape[0] == rows * cols
        np.testing.assert_array_equal(o.perm[o.rank], np.arange(rows * cols))

    @given(rows=st.integers(1, 30), cols=st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_bijective_property(self, rows, cols):
        o = pseudo_hilbert_order(rows, cols)
        assert np.unique(o.perm).shape[0] == rows * cols

    @pytest.mark.parametrize("rows,cols,tile", [(16, 16, 4), (32, 32, 8), (64, 64, 8)])
    def test_perfect_connectivity_on_aligned_squares(self, rows, cols, tile):
        """When tiles divide the domain exactly, the curve is fully
        connected — every consecutive pair is a 2D neighbour."""
        o = pseudo_hilbert_order(rows, cols, tile_size=tile)
        x = o.perm % cols
        y = o.perm // cols
        steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert np.all(steps == 1)

    def test_near_connectivity_on_arbitrary_rectangles(self):
        """Boundary-clipped tiles may break adjacency occasionally, but
        the overwhelming majority of steps stay unit length."""
        o = pseudo_hilbert_order(13, 11, tile_size=4)
        x = o.perm % 11
        y = o.perm // 11
        steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert np.mean(steps == 1) > 0.95

    def test_tile_structure_consistent(self):
        o = pseudo_hilbert_order(13, 11, tile_size=4)
        assert o.num_tiles == 12  # paper Fig. 4(a)
        assert o.tile_displ[0] == 0
        assert o.tile_displ[-1] == 13 * 11
        assert o.tile_of.shape == o.perm.shape
        # tile_of must be non-decreasing along the curve
        assert np.all(np.diff(o.tile_of) >= 0)

    def test_tiles_are_spatially_compact(self):
        o = pseudo_hilbert_order(32, 32, tile_size=8)
        x = o.perm % 32
        y = o.perm // 32
        for t in range(o.num_tiles):
            lo, hi = o.tile_displ[t], o.tile_displ[t + 1]
            assert x[lo:hi].max() - x[lo:hi].min() < 8
            assert y[lo:hi].max() - y[lo:hi].min() < 8

    def test_cache_line_block_locality(self):
        """A 16-element run maps into a small 2D block (Fig. 5's 4x4
        cache-line argument), unlike row-major's 1x16 strip."""
        o = pseudo_hilbert_order(16, 16, tile_size=4)
        x = o.perm % 16
        y = o.perm // 16
        for start in range(0, 256, 16):
            w = x[start : start + 16].max() - x[start : start + 16].min() + 1
            h = y[start : start + 16].max() - y[start : start + 16].min() + 1
            assert max(w, h) <= 4

    def test_to_from_ordered_roundtrip(self):
        o = pseudo_hilbert_order(9, 7, tile_size=2)
        img = np.arange(63).reshape(9, 7)
        np.testing.assert_array_equal(o.from_ordered(o.to_ordered(img)), img)

    def test_to_ordered_validates_length(self):
        o = pseudo_hilbert_order(4, 4, tile_size=2)
        with pytest.raises(ValueError):
            o.to_ordered(np.zeros(15))
        with pytest.raises(ValueError):
            o.from_ordered(np.zeros(17))

    def test_non_power_of_two_tile_rejected(self):
        with pytest.raises(ValueError):
            pseudo_hilbert_order(8, 8, tile_size=3)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            pseudo_hilbert_order(0, 4)
