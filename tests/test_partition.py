"""Tests for row partitioning and partition footprint statistics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ordering import make_ordering
from repro.sparse import (
    CSRMatrix,
    RowPartitions,
    partition_data_reuse,
    partition_input_footprints,
)


class TestRowPartitions:
    def test_bounds_cover_rows_exactly(self):
        p = RowPartitions(num_rows=23, partition_size=5)
        assert p.num_partitions == 5
        spans = [p.bounds(i) for i in range(5)]
        assert spans[0] == (0, 5)
        assert spans[-1] == (20, 23)
        total = sum(b - a for a, b in spans)
        assert total == 23

    def test_all_bounds(self):
        p = RowPartitions(10, 4)
        bounds = p.all_bounds()
        np.testing.assert_array_equal(bounds, [[0, 4], [4, 8], [8, 10]])

    def test_exact_division(self):
        p = RowPartitions(16, 4)
        assert p.num_partitions == 4
        assert p.bounds(3) == (12, 16)

    def test_zero_rows(self):
        assert RowPartitions(0, 4).num_partitions == 0

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            RowPartitions(10, 4).bounds(3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RowPartitions(10, 0)
        with pytest.raises(ValueError):
            RowPartitions(-1, 4)


class TestFootprints:
    def test_footprints_are_distinct_sorted(self):
        rng = np.random.default_rng(0)
        S = sp.random(24, 30, density=0.3, random_state=rng, format="csr", dtype=np.float32)
        A = CSRMatrix.from_scipy(S)
        parts = RowPartitions(24, 8)
        fps = partition_input_footprints(A, parts)
        assert len(fps) == 3
        for fp in fps:
            assert np.all(np.diff(fp) > 0)

    def test_footprint_matches_manual(self):
        dense = np.zeros((4, 6), dtype=np.float32)
        dense[0, [1, 3]] = 1.0
        dense[1, [1, 5]] = 1.0
        dense[2, [0]] = 1.0
        A = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        fps = partition_input_footprints(A, RowPartitions(4, 2))
        np.testing.assert_array_equal(fps[0], [1, 3, 5])
        np.testing.assert_array_equal(fps[1], [0])

    def test_data_reuse_definition(self):
        dense = np.zeros((2, 4), dtype=np.float32)
        dense[0, [0, 1]] = 1.0
        dense[1, [0, 1]] = 1.0  # 4 nnz over 2 distinct inputs -> reuse 2
        A = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        reuse = partition_data_reuse(A, RowPartitions(2, 2))
        np.testing.assert_allclose(reuse, [2.0])

    def test_hilbert_partitions_have_higher_reuse(self, medium_matrix, medium_geometry):
        """Connected (Hilbert) partitions gather overlapping inputs —
        the Fig. 6(a) data-reuse argument."""
        n = medium_geometry.grid.n
        tomo = make_ordering("pseudo-hilbert", n, n, min_tiles=16)
        sino_h = make_ordering(
            "pseudo-hilbert", medium_geometry.num_angles, n, min_tiles=16
        )
        ordered = medium_matrix.permute(sino_h.perm, tomo.rank)
        parts = RowPartitions(ordered.num_rows, 64)
        reuse_hilbert = partition_data_reuse(ordered, parts).mean()
        reuse_rowmajor = partition_data_reuse(medium_matrix, parts).mean()
        assert reuse_hilbert > reuse_rowmajor
