"""Two-level topology battery: grouping invariants, bit-exactness,
hierarchical accounting, degradation locality, and ambient chaos.

The load-bearing claim of :mod:`repro.topology` is that the
hierarchical communicator is an *accounting* layer, not a numerical
one: any workload run through :class:`HierComm` is bit-identical —
``np.array_equal``, not merely close — to the same workload on a flat
:class:`SimComm`, on every kernel layout, for single and batched
solves, and under ambient fault injection.  On top of that, the
two-level traffic split it records must be conservative: everything
that crosses the inter-node network appears in the flat log's
off-diagonal volume too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs, reconstruct
from repro.core import OperatorConfig, preprocess
from repro.dist import DistributedOperator, SimComm, decompose_both
from repro.geometry import ParallelBeamGeometry
from repro.resilience import FaultConfig, FaultInjector
from repro.solvers import cgls, cgls_batch
from repro.topology import HierComm, HierLog, Topology, parse_topology

ITERATIONS = 12


# -- topology invariants -------------------------------------------------


class TestTopology:
    def test_flat_is_one_group(self):
        topo = Topology.flat(4)
        assert topo.groups == ((0, 1, 2, 3),)
        assert topo.is_flat and topo.num_nodes == 1 and topo.num_ranks == 4
        assert topo.describe() == "flat(4)"

    def test_hierarchical_shape(self):
        topo = Topology.hierarchical(2, 3)
        assert topo.groups == ((0, 1, 2), (3, 4, 5))
        assert not topo.is_flat
        assert topo.leader(0) == 0 and topo.leader(1) == 3
        assert topo.node_of(4) == 1
        assert topo.describe() == "nodes:2,ranks:3"

    def test_grouped_last_node_partial(self):
        topo = Topology.grouped(5, 2)
        assert topo.groups == ((0, 1), (2, 3), (4,))
        assert topo.ranks_per_node == 2
        assert topo.describe() == "nodes:3,ranks:2/2/1"

    @pytest.mark.parametrize(
        "groups",
        [
            (),  # no groups at all
            ((0, 1), ()),  # an empty node
            ((0, 2), (1, 3)),  # interleaved, not contiguous
            ((0, 1), (3, 4)),  # rank 2 missing
            ((0, 1), (1, 2)),  # rank 1 owned twice
        ],
    )
    def test_rejects_non_partitions(self, groups):
        with pytest.raises(ValueError):
            Topology(tuple(tuple(g) for g in groups))

    def test_without_ranks_keeps_locality(self):
        topo = Topology.hierarchical(2, 2)
        shrunk = topo.without_ranks({1})
        assert shrunk.groups == ((0,), (1, 2))  # survivors renumbered
        # A whole dead node disappears rather than leaving an empty group.
        assert Topology.hierarchical(2, 2).without_ranks({0, 1}).groups == ((0, 1),)
        with pytest.raises(ValueError, match="zero surviving"):
            topo.without_ranks({0, 1, 2, 3})

    @given(
        num_ranks=st.integers(1, 64),
        ranks_per_node=st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_grouping_partitions_ranks_exactly(self, num_ranks, ranks_per_node):
        topo = Topology.grouped(num_ranks, ranks_per_node)
        flat = [r for group in topo.groups for r in group]
        assert flat == list(range(num_ranks))  # exact, ordered partition
        assert all(len(g) <= ranks_per_node for g in topo.groups)
        assert sum(len(g) for g in topo.groups[:-1]) % ranks_per_node == 0
        node_map = topo.node_map()
        for g, group in enumerate(topo.groups):
            assert topo.leader(g) == group[0]
            for r in group:
                assert topo.node_of(r) == g and node_map[r] == g

    @given(
        num_ranks=st.integers(2, 24),
        ranks_per_node=st.integers(1, 8),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_without_ranks_renumbers_survivors(self, num_ranks, ranks_per_node, data):
        topo = Topology.grouped(num_ranks, ranks_per_node)
        dead = data.draw(
            st.sets(st.integers(0, num_ranks - 1), min_size=1,
                    max_size=num_ranks - 1)
        )
        shrunk = topo.without_ranks(dead)
        assert shrunk.num_ranks == num_ranks - len(dead)
        flat = [r for group in shrunk.groups for r in group]
        assert flat == list(range(shrunk.num_ranks))
        # Survivors keep their relative order and their node grouping:
        # two survivors share a new node iff they shared an old one.
        survivors = [r for r in range(num_ranks) if r not in dead]
        old_node = {r: topo.node_of(r) for r in survivors}
        for i, r in enumerate(survivors):
            for j, s in enumerate(survivors):
                same_old = old_node[r] == old_node[s]
                same_new = shrunk.node_of(i) == shrunk.node_of(j)
                assert same_old == same_new


class TestParse:
    def test_parse_exact_and_grouped(self):
        assert parse_topology("nodes:2,ranks:2").groups == ((0, 1), (2, 3))
        assert parse_topology("nodes:2,ranks:2", num_ranks=4).num_nodes == 2
        # Machine-shaped spec on a different rank count: group by M.
        assert parse_topology("nodes:2,ranks:3", num_ranks=4).groups == (
            (0, 1, 2), (3,),
        )
        assert parse_topology("flat", num_ranks=3).is_flat
        # M >= P collapses to flat: there is no inter-node link to model.
        assert parse_topology("nodes:8,ranks:16", num_ranks=4).is_flat

    @pytest.mark.parametrize(
        "bad", ["nodes", "nodes:two", "nodes:0", "widgets:3", "nodes:-1", ","]
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError, match="topology"):
            parse_topology(bad, num_ranks=4)

    def test_ambient_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TOPOLOGY", raising=False)
        assert Topology.ambient(4).is_flat
        monkeypatch.setenv("REPRO_TOPOLOGY", "nodes:2,ranks:2")
        assert Topology.ambient(4).groups == ((0, 1), (2, 3))
        assert Topology.ambient(1).is_flat  # a single rank is always flat
        monkeypatch.setenv("REPRO_TOPOLOGY", "ranks:64")
        assert Topology.ambient(4).is_flat  # whole job fits on one node


# -- the distributed scenario --------------------------------------------


@pytest.fixture(scope="module", params=["csr", "buffered", "ell"])
def system(request):
    """One serial operator per kernel layout plus a consistent measurement."""
    geometry = ParallelBeamGeometry(24, 32)
    operator, _ = preprocess(
        geometry, config=OperatorConfig(kernel=request.param)
    )
    truth = np.random.default_rng(0).random(operator.num_pixels).astype(np.float32)
    y = operator.forward(truth)
    yield operator, y
    operator.close()


def _operator(serial, num_ranks, topology=None, faults=None):
    tomo_dec, sino_dec = decompose_both(
        serial.tomo_ordering, serial.sino_ordering, num_ranks
    )
    comm = None
    if faults is not None:
        injector = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
        if topology is not None and not topology.is_flat:
            comm = HierComm(topology, fault_injector=injector)
        else:
            comm = SimComm(num_ranks, fault_injector=injector)
    return DistributedOperator(
        serial.matrix, tomo_dec, sino_dec, comm=comm, topology=topology
    )


# -- bit-exactness of the hierarchical path ------------------------------


class TestBitExact:
    """flat vs hierarchical: np.array_equal on every layout and pass."""

    def test_forward_and_adjoint(self, system):
        serial, y = system
        flat = _operator(serial, 4)
        hier = _operator(serial, 4, topology=Topology.hierarchical(2, 2))
        assert isinstance(hier.comm, HierComm)
        x = np.random.default_rng(1).random(serial.num_pixels).astype(np.float32)
        assert np.array_equal(hier.forward(x), flat.forward(x))
        assert np.array_equal(hier.adjoint(y), flat.adjoint(y))

    def test_full_solve(self, system):
        serial, y = system
        flat = cgls(_operator(serial, 4), y, num_iterations=ITERATIONS)
        hier = cgls(
            _operator(serial, 4, topology=Topology.hierarchical(2, 2)),
            y,
            num_iterations=ITERATIONS,
        )
        assert np.array_equal(hier.x, flat.x)
        assert hier.stop_reason == flat.stop_reason

    def test_batched_solve(self, system):
        serial, y = system
        rng = np.random.default_rng(2)
        Y = np.stack([y, y * 0.5 + rng.random(y.shape).astype(np.float32)], axis=1)
        flat = cgls_batch(_operator(serial, 4), Y, num_iterations=8)
        hier = cgls_batch(
            _operator(serial, 4, topology=Topology.hierarchical(2, 2)),
            Y,
            num_iterations=8,
        )
        assert np.array_equal(hier.X, flat.X)

    def test_ragged_topology(self, system):
        serial, y = system
        flat = _operator(serial, 4)
        hier = _operator(serial, 4, topology=Topology.grouped(4, 3))
        assert hier.topology.describe() == "nodes:2,ranks:3/1"
        assert np.array_equal(hier.adjoint(y), flat.adjoint(y))


# -- hierarchical accounting ---------------------------------------------


class TestHierAccounting:
    def test_inter_bytes_bounded_by_flat_cross_node_volume(self, system):
        serial, y = system
        topo = Topology.hierarchical(2, 2)
        op = _operator(serial, 4, topology=topo)
        cgls(op, y, num_iterations=ITERATIONS)
        hier = op.hier_log()
        assert isinstance(hier, HierLog)
        # Everything the leaders exchanged is flat off-node traffic:
        # aggregation can only merge messages, never invent bytes
        # (allreduce halving makes it strictly cheaper than the ring).
        volume = op.comm.log.volume_bytes
        node_of = topo.node_map()
        cross = sum(
            int(volume[p, q])
            for p in range(4)
            for q in range(4)
            if p != q and node_of[p] != node_of[q]
        )
        assert 0 < hier.inter_bytes() <= cross
        # Aggregation sends at most one message per interacting node
        # pair per collective — strictly fewer than the flat rank-pair
        # messages it replaces.
        counts = op.comm.log.message_counts
        cross_messages = sum(
            int(counts[p, q])
            for p in range(4)
            for q in range(4)
            if p != q and node_of[p] != node_of[q]
        )
        assert 0 < hier.inter_messages < cross_messages
        assert hier.intra_bytes > 0 and hier.intra_messages > 0
        assert hier.collective_calls == op.comm.log.collective_calls

    def test_counters_and_spans_emitted(self, system):
        serial, y = system
        op = _operator(serial, 4, topology=Topology.hierarchical(2, 2))
        with obs.capture() as cap:
            cgls(op, y, num_iterations=4)
        hier = op.hier_log()
        assert cap.total(obs.COMM_INTRA_BYTES) == hier.intra_bytes
        assert cap.total(obs.COMM_INTER_BYTES) == hier.inter_bytes()
        assert cap.total(obs.COMM_INTRA_MESSAGES) == hier.intra_messages
        assert cap.total(obs.COMM_INTER_MESSAGES) == hier.inter_messages
        assert cap.span_names().count("comm.intra_exchange") > 0
        assert cap.span_names().count("comm.inter_exchange") > 0
        # The flat log (and COMM_BYTES) is untouched by the hierarchy.
        assert cap.total(obs.COMM_BYTES) == op.comm.log.off_diagonal_volume()

    def test_single_node_topology_has_no_inter_traffic(self, system):
        serial, y = system
        op = _operator(serial, 2, topology=Topology.grouped(2, 2))
        assert op.topology.is_flat  # 2 ranks on a 2-rank node
        assert op.hier_log() is None  # plain SimComm, no hier layer


# -- chaos on the hierarchical path --------------------------------------


class TestHierChaos:
    @pytest.mark.parametrize("spec", ["drop=0.08,seed=1", "drop=0.05,corrupt=0.02,seed=7"])
    def test_faults_heal_bit_exactly(self, system, spec):
        serial, y = system
        clean = cgls(
            _operator(serial, 4, topology=Topology.hierarchical(2, 2)),
            y,
            num_iterations=ITERATIONS,
        )
        chaotic = cgls(
            _operator(
                serial, 4,
                topology=Topology.hierarchical(2, 2),
                faults=FaultConfig.parse(spec),
            ),
            y,
            num_iterations=ITERATIONS,
        )
        assert np.array_equal(chaotic.x, clean.x)

    def test_hier_log_meters_logical_traffic_only(self, system):
        serial, y = system
        topo = Topology.hierarchical(2, 2)
        clean_op = _operator(serial, 4, topology=topo)
        cgls(clean_op, y, num_iterations=ITERATIONS)
        chaos_op = _operator(
            serial, 4, topology=topo,
            faults=FaultConfig(drop=0.05, corrupt=0.02, seed=7),
        )
        cgls(chaos_op, y, num_iterations=ITERATIONS)
        assert chaos_op.hier_log().inter_bytes() == clean_op.hier_log().inter_bytes()
        assert chaos_op.hier_log().intra_bytes == clean_op.hier_log().intra_bytes

    def test_ambient_env_chaos_on_ambient_topology(self, monkeypatch):
        """CI contract: REPRO_TOPOLOGY + REPRO_FAULTS on an unmodified
        reconstruct() changes nothing observable in the image."""
        geometry = ParallelBeamGeometry(24, 32)
        operator, _ = preprocess(geometry, config=OperatorConfig(kernel="csr"))
        rng = np.random.default_rng(4)
        truth = rng.random(operator.num_pixels).astype(np.float32)
        sinogram = operator.ordered_to_sinogram(
            np.asarray(operator.forward(truth), dtype=np.float64)
        )
        clean = reconstruct(
            sinogram, geometry, operator=operator,
            solver="cg", iterations=8, num_ranks=4,
        )
        assert clean.extra["topology"] == "flat(4)"
        monkeypatch.setenv("REPRO_TOPOLOGY", "nodes:2,ranks:2")
        monkeypatch.setenv("REPRO_FAULTS", "drop=0.03,corrupt=0.01")
        monkeypatch.setenv("REPRO_FAULT_SEED", "20190817")
        chaotic = reconstruct(
            sinogram, geometry, operator=operator,
            solver="cg", iterations=8, num_ranks=4,
        )
        assert np.array_equal(chaotic.image, clean.image)
        assert chaotic.extra["topology"] == "nodes:2,ranks:2"
        assert chaotic.extra["hier_comm"]["inter_bytes"] > 0
        operator.close()


# -- crash degradation on the hierarchical path --------------------------


class TestHierDegradation:
    def test_crash_absorbed_within_node_group(self, system):
        serial, y = system
        reference = cgls(_operator(serial, 4), y, num_iterations=ITERATIONS)
        injector = FaultInjector(FaultConfig(crashes=((5, 1),), seed=3))
        op = _operator(
            serial, 4, topology=Topology.hierarchical(2, 2), faults=injector
        )
        result = cgls(op, y, num_iterations=ITERATIONS)
        assert op.num_ranks == 3
        record = op.degradations[0]
        assert record["dead"] == [1]
        assert record["topology"] == "nodes:2,ranks:2"
        # Rank 1's work stays on its node: absorbed by rank 0, not 2/3.
        assert record["absorbed_by"] == {1: 0}
        # The shrunken communicator keeps the node structure.
        assert op.topology.groups == ((0,), (1, 2))
        assert isinstance(op.comm, HierComm)
        scale = float(np.max(np.abs(reference.x)))
        assert np.max(np.abs(result.x - reference.x)) <= 1e-5 * scale

    def test_whole_node_death_falls_back_globally(self, system):
        serial, y = system
        reference = cgls(_operator(serial, 4), y, num_iterations=ITERATIONS)
        injector = FaultInjector(
            FaultConfig(crashes=((4, 2), (5, 2)), seed=9)
        )
        op = _operator(
            serial, 4, topology=Topology.hierarchical(2, 2), faults=injector
        )
        result = cgls(op, y, num_iterations=ITERATIONS)
        # Node 1 (ranks 2,3) died entirely across two degradations; the
        # survivors are node 0's ranks and the solve still converges.
        assert op.num_ranks == 2
        assert op.topology.groups == ((0, 1),)
        scale = float(np.max(np.abs(reference.x)))
        assert np.max(np.abs(result.x - reference.x)) <= 1e-5 * scale
