"""Tests for the generalized Hilbert (gilbert) rectangle curve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import gilbert2d, gilbert_order


class TestGilbert:
    @pytest.mark.parametrize(
        "w,h",
        [(1, 1), (1, 9), (9, 1), (2, 2), (3, 5), (5, 3), (13, 11), (16, 16), (31, 7), (4, 30)],
    )
    def test_visits_every_cell_once(self, w, h):
        coords = gilbert2d(w, h)
        assert coords.shape == (w * h, 2)
        flat = coords[:, 1] * w + coords[:, 0]
        assert np.unique(flat).shape[0] == w * h

    @pytest.mark.parametrize("w,h", [(2, 2), (16, 16), (4, 30), (12, 8), (2, 26)])
    def test_even_rectangles_fully_adjacent(self, w, h):
        coords = gilbert2d(w, h)
        steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        assert np.all(steps == 1), f"max step {steps.max()} for {w}x{h}"

    @given(w=st.integers(1, 40), h=st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_bijective_and_near_connected_property(self, w, h):
        """Every cell once; steps are unit except the documented rare
        diagonal moves (L1 distance 2) on odd-sided rectangles."""
        coords = gilbert2d(w, h)
        flat = coords[:, 1] * w + coords[:, 0]
        assert np.unique(flat).shape[0] == w * h
        if w * h > 1:
            steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
            assert steps.max() <= 2
            assert np.mean(steps == 1) >= 0.9

    def test_coordinates_in_bounds(self):
        coords = gilbert2d(7, 9)
        assert coords[:, 0].min() >= 0 and coords[:, 0].max() < 7
        assert coords[:, 1].min() >= 0 and coords[:, 1].max() < 9

    def test_starts_at_origin(self):
        for w, h in [(5, 3), (3, 5), (8, 8)]:
            assert tuple(gilbert2d(w, h)[0]) == (0, 0)

    def test_order_is_permutation(self):
        order = gilbert_order(6, 4)
        assert sorted(order.tolist()) == list(range(24))

    @pytest.mark.parametrize("w,h", [(0, 3), (3, 0), (-1, 2)])
    def test_empty_rectangle_rejected(self, w, h):
        with pytest.raises(ValueError):
            gilbert2d(w, h)

    def test_matches_hilbert_on_power_of_two_square_locality(self):
        """On a 2^k square, gilbert has Hilbert-grade block locality."""
        coords = gilbert2d(16, 16)
        for start in range(0, 256, 16):
            chunk = coords[start : start + 16]
            w = chunk[:, 0].max() - chunk[:, 0].min() + 1
            h = chunk[:, 1].max() - chunk[:, 1].min() + 1
            assert w * h <= 32  # compact (within 2x of a square block)
