"""Tests for the simulated MPI communicator."""

import numpy as np
import pytest

from repro.dist import CommLog, SimComm


class TestAlltoallv:
    def test_transpose_semantics(self):
        comm = SimComm(3)
        send = [
            [np.array([p * 10 + q], dtype=np.float32) for q in range(3)]
            for p in range(3)
        ]
        recv = comm.alltoallv(send)
        for q in range(3):
            for p in range(3):
                assert recv[q][p][0] == p * 10 + q

    def test_volume_logging(self):
        comm = SimComm(2)
        send = [
            [np.zeros(0, dtype=np.float32), np.zeros(5, dtype=np.float32)],
            [np.zeros(3, dtype=np.float32), np.zeros(0, dtype=np.float32)],
        ]
        comm.alltoallv(send)
        assert comm.log.volume_bytes[0, 1] == 20
        assert comm.log.volume_bytes[1, 0] == 12
        assert comm.log.message_counts[0, 0] == 0  # empty buffers not counted
        assert comm.log.collective_calls == 1

    def test_shape_validation(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.alltoallv([[np.zeros(1)]])

    def test_empty_exchange(self):
        comm = SimComm(2)
        send = [[np.zeros(0)] * 2 for _ in range(2)]
        recv = comm.alltoallv(send)
        assert all(r.size == 0 for row in recv for r in row)
        assert comm.log.off_diagonal_volume() == 0


class TestAllreduce:
    def test_sum(self):
        comm = SimComm(4)
        pieces = [np.full(3, float(p)) for p in range(4)]
        total = comm.allreduce_sum(pieces)
        np.testing.assert_allclose(total, 6.0)

    def test_traffic_logged(self):
        comm = SimComm(4)
        comm.allreduce_sum([np.zeros(100, dtype=np.float32) for _ in range(4)])
        assert comm.log.off_diagonal_volume() > 0

    def test_shape_mismatch_rejected(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.allreduce_sum([np.zeros(2), np.zeros(3)])

    def test_count_mismatch_rejected(self):
        comm = SimComm(3)
        with pytest.raises(ValueError):
            comm.allreduce_sum([np.zeros(2)])


class TestCommLog:
    def test_partner_counts(self):
        log = CommLog(3)
        log.message_counts[0, 1] = 2
        log.message_counts[2, 0] = 1
        np.testing.assert_array_equal(log.partners_per_rank(), [2, 1, 1])

    def test_send_recv_per_rank_exclude_self(self):
        log = CommLog(2)
        log.volume_bytes[0, 0] = 100  # self-copy
        log.volume_bytes[0, 1] = 40
        np.testing.assert_array_equal(log.send_bytes_per_rank(), [40, 0])
        np.testing.assert_array_equal(log.recv_bytes_per_rank(), [0, 40])
        assert log.off_diagonal_volume() == 40

    def test_reset(self):
        comm = SimComm(2)
        comm.alltoallv([[np.zeros(1, dtype=np.float32)] * 2 for _ in range(2)])
        comm.reset_log()
        assert comm.log.collective_calls == 0
        assert comm.log.off_diagonal_volume() == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimComm(0)
