"""Tests for the compute-centric baseline operator."""

import numpy as np
import pytest

from repro.core import CompXCTOperator, preprocess
from repro.geometry import ParallelBeamGeometry


@pytest.fixture(scope="module")
def pair():
    g = ParallelBeamGeometry(30, 20)
    mem, _ = preprocess(g)
    return g, mem, CompXCTOperator(g)


class TestEquivalence:
    def test_forward_matches_memxct(self, pair, rng):
        g, mem, comp = pair
        img = rng.random((20, 20))
        y_mem = mem.project_image(img)
        y_comp = comp.forward(img.reshape(-1)).reshape(g.sinogram_shape)
        np.testing.assert_allclose(y_mem, y_comp, rtol=1e-4, atol=1e-5)

    def test_adjoint_matches_memxct(self, pair, rng):
        g, mem, comp = pair
        sino = rng.random(g.sinogram_shape)
        x_mem = mem.backproject_sinogram(sino)
        x_comp = comp.adjoint(sino.reshape(-1)).reshape(20, 20)
        np.testing.assert_allclose(x_mem, x_comp, rtol=1e-4, atol=1e-5)

    def test_row_col_sums(self, pair):
        _, mem, comp = pair
        np.testing.assert_allclose(
            comp.row_sums(),
            mem.ordered_to_sinogram(mem.row_sums()).reshape(-1),
            rtol=1e-4,
            atol=1e-5,
        )
        np.testing.assert_allclose(
            comp.col_sums(),
            mem.ordered_to_image(mem.col_sums()).reshape(-1),
            rtol=1e-4,
            atol=1e-5,
        )


class TestRedundantComputation:
    def test_tracing_repeated_every_call(self, pair):
        g, _, _ = pair
        comp = CompXCTOperator(g)
        assert comp.trace_invocations == 0
        comp.forward(np.zeros(comp.num_pixels))
        assert comp.trace_invocations == g.num_angles
        comp.adjoint(np.zeros(comp.num_rays))
        assert comp.trace_invocations == 2 * g.num_angles
        comp.forward(np.zeros(comp.num_pixels))
        assert comp.trace_invocations == 3 * g.num_angles

    def test_solver_compatibility(self, pair, rng):
        """CompXCT plugs into the same solver interface."""
        from repro.solvers import sirt

        g, mem, comp = pair
        img = rng.random((20, 20))
        y = comp.forward(img.reshape(-1))
        res = sirt(comp, y, num_iterations=5)
        assert res.residual_norms[-1] < res.residual_norms[0]


class TestValidation:
    def test_wrong_lengths(self, pair):
        _, _, comp = pair
        with pytest.raises(ValueError):
            comp.forward(np.zeros(3))
        with pytest.raises(ValueError):
            comp.adjoint(np.zeros(3))
