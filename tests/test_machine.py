"""Tests for machine specs, the performance model, and tuning sweeps."""

import numpy as np
import pytest

from repro.machine import (
    DEVICES,
    MACHINES,
    KernelProfile,
    PerformanceModel,
    best_configuration,
    evaluate_configuration,
    get_device,
    get_machine,
    heatmap,
    sweep_tuning,
)


class TestSpecs:
    def test_table2_devices_present(self):
        assert set(DEVICES) == {"KNL", "K20X", "K80", "P100", "V100"}

    def test_table2_machines_present(self):
        assert set(MACHINES) == {"theta", "bluewaters", "cooley", "minsky", "dgx1"}

    def test_table2_key_values(self):
        knl = get_device("KNL")
        assert knl.fast_mem_bytes == 16 * (1 << 30)  # 16 GB MCDRAM
        assert knl.fast_mem_bw == 400e9  # 400 GB/s
        assert knl.slow_mem_bw == 90e9  # 90 GB/s DDR4
        assert get_device("V100").fast_mem_bw == 900e9
        assert get_device("P100").fast_mem_bw == 720e9

    def test_node_counts(self):
        assert get_machine("theta").num_nodes == 4392
        assert get_machine("bluewaters").num_nodes == 4228
        assert get_machine("cooley").num_nodes == 126

    def test_unknown_names(self):
        with pytest.raises(KeyError):
            get_device("A100")
        with pytest.raises(KeyError):
            get_machine("frontier")


class TestPerformanceModel:
    NNZ = 10_000_000

    def test_lower_miss_rate_is_faster(self):
        pm = PerformanceModel(get_device("KNL"))
        fast = pm.gflops(KernelProfile.csr_baseline(self.NNZ, miss_rate=0.05))
        slow = pm.gflops(KernelProfile.csr_baseline(self.NNZ, miss_rate=0.40))
        assert fast > slow

    def test_buffered_beats_csr_at_same_miss_rate(self):
        pm = PerformanceModel(get_device("KNL"))
        csr = KernelProfile.csr_baseline(self.NNZ, miss_rate=0.05)
        buf = KernelProfile.buffered(self.NNZ, map_length=self.NNZ // 40, miss_rate=0.5)
        assert pm.gflops(buf, smt=4) > pm.gflops(csr, smt=4)

    def test_knl_baseline_is_latency_bound(self):
        """High miss rates must push the baseline far below the
        bandwidth roofline — the Fig. 9(a) falling-baseline effect."""
        pm = PerformanceModel(get_device("KNL"))
        profile = KernelProfile.csr_baseline(self.NNZ, miss_rate=0.5)
        bw_only = KernelProfile(
            nnz=self.NNZ,
            irregular_accesses=self.NNZ,
            miss_rate=0.5,
            latency_bound=False,
        )
        assert pm.projection_time(profile) > 2 * pm.projection_time(bw_only)

    def test_mcdram_blending(self):
        """Regular data beyond 16 GB spills to DDR: bandwidth must drop
        monotonically and approach the DDR rate."""
        pm = PerformanceModel(get_device("KNL"))
        small = pm.effective_bandwidth(1e9)
        medium = pm.effective_bandwidth(28e9)  # ADS3's partial-caching case
        large = pm.effective_bandwidth(1e12)
        assert small > medium > large
        assert small == pytest.approx(0.78 * 400e9)
        assert large < 1.3 * 0.78 * 90e9

    def test_gpu_has_single_memory(self):
        pm = PerformanceModel(get_device("V100"))
        assert pm.effective_bandwidth(1e9) == pm.effective_bandwidth(1e13)

    def test_smt_hides_latency_on_knl(self):
        pm = PerformanceModel(get_device("KNL"))
        p = KernelProfile.csr_baseline(self.NNZ, miss_rate=0.4)
        assert pm.gflops(p, smt=4) > pm.gflops(p, smt=1)

    def test_gpu_ranking_matches_bandwidth(self):
        """V100 > P100 > K80 for the same bandwidth-bound profile —
        paper Fig. 9(d)-(f) ordering."""
        p = KernelProfile.buffered(self.NNZ, map_length=self.NNZ // 40, miss_rate=0.3)
        rates = [PerformanceModel(get_device(d)).gflops(p) for d in ("K80", "P100", "V100")]
        assert rates[0] < rates[1] < rates[2]

    def test_bandwidth_utilization_below_roofline(self):
        dev = get_device("KNL")
        pm = PerformanceModel(dev)
        p = KernelProfile.buffered(self.NNZ, map_length=self.NNZ // 40, miss_rate=0.2)
        assert pm.bandwidth_utilization(p, smt=4) <= dev.fast_mem_bw / 1e9

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            KernelProfile(nnz=-1, irregular_accesses=0, miss_rate=0.0)
        with pytest.raises(ValueError):
            KernelProfile(nnz=1, irregular_accesses=1, miss_rate=1.5)


class TestTuning:
    @pytest.fixture(scope="class")
    def matrix(self):
        from repro.geometry import ParallelBeamGeometry
        from repro.ordering import make_ordering
        from repro.sparse import CSRMatrix
        from repro.trace import build_projection_matrix

        g = ParallelBeamGeometry(60, 48)
        A = CSRMatrix.from_scipy(build_projection_matrix(g))
        tomo = make_ordering("pseudo-hilbert", 48, 48, min_tiles=16)
        sino = make_ordering("pseudo-hilbert", 60, 48, min_tiles=16)
        return A.permute(sino.perm, tomo.rank).sort_rows_by_index()

    def test_sweep_and_best(self, matrix):
        pts = sweep_tuning(
            matrix, DEVICES["KNL"], [32, 128], [4096, 16384], smts=[1, 2, 4]
        )
        assert len(pts) == 12
        best = best_configuration(pts)
        assert best.valid and best.gflops > 0

    def test_knl_leak_penalty(self, matrix):
        """4 SMT x 16 KB = 64 KB > 32 KB L1 must leak; 4 x 8 KB must not
        (the Fig. 10 optimum structure)."""
        leak = evaluate_configuration(matrix, DEVICES["KNL"], 128, 16384, smt=4)
        fit = evaluate_configuration(matrix, DEVICES["KNL"], 128, 8192, smt=4)
        assert leak.leak_fraction > 0
        assert fit.leak_fraction == 0

    def test_gpu_shared_memory_limit(self, matrix):
        """Buffers beyond 48 KB are invalid on P100 (addressable shared
        memory), valid on V100 (96 KB)."""
        p100 = evaluate_configuration(matrix, DEVICES["P100"], 512, 96 * 1024)
        v100 = evaluate_configuration(matrix, DEVICES["V100"], 512, 96 * 1024)
        assert not p100.valid
        assert v100.valid

    def test_heatmap_layout(self, matrix):
        pts = sweep_tuning(matrix, DEVICES["KNL"], [32, 128], [4096, 16384], smts=[2])
        grid, parts, buffers = heatmap(pts, smt=2)
        assert grid.shape == (2, 2)
        assert parts == [32, 128] and buffers == [4096, 16384]
        assert np.isfinite(grid).all()

    def test_best_requires_valid_points(self):
        with pytest.raises(ValueError):
            best_configuration([])
