"""Tests for tile-based both-domain decomposition."""

import numpy as np
import pytest

from repro.dist import decompose_both, decompose_domain
from repro.ordering import make_ordering


class TestDecomposeDomain:
    @pytest.fixture(scope="class")
    def ordering(self):
        return make_ordering("pseudo-hilbert", 32, 32, tile_size=4)

    @pytest.mark.parametrize("ranks", [1, 2, 3, 7, 16])
    def test_bounds_cover_domain(self, ordering, ranks):
        dec = decompose_domain(ordering, ranks)
        assert dec.bounds[0] == 0
        assert dec.bounds[-1] == ordering.num_cells
        assert np.all(np.diff(dec.bounds) >= 0)

    def test_cuts_on_tile_boundaries(self, ordering):
        dec = decompose_domain(ordering, 8)
        tile_displ = set(ordering.two_level.tile_displ.tolist())
        for b in dec.bounds:
            assert int(b) in tile_displ

    def test_subdomains_are_connected_regions(self, ordering):
        """Paper Fig. 4(b): each rank's cells form a connected 2D region."""
        dec = decompose_domain(ordering, 4)
        cols = ordering.cols
        for p in range(4):
            cells = ordering.perm[dec.bounds[p] : dec.bounds[p + 1]]
            x = cells % cols
            y = cells // cols
            steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
            assert steps.max() == 1  # the curve never leaves the region

    def test_load_balance_reasonable(self, ordering):
        dec = decompose_domain(ordering, 8)
        assert dec.load_imbalance() < 1.5

    def test_owner_of(self, ordering):
        dec = decompose_domain(ordering, 4)
        owners = dec.owner_of(np.arange(ordering.num_cells))
        assert owners.min() == 0 and owners.max() == 3
        assert np.all(np.diff(owners) >= 0)  # contiguous ownership
        for p in range(4):
            assert (owners == p).sum() == dec.rank_size(p)

    def test_scatter_gather_roundtrip(self, ordering):
        dec = decompose_domain(ordering, 5)
        data = np.arange(ordering.num_cells, dtype=np.float64)
        np.testing.assert_array_equal(dec.gather(dec.scatter(data)), data)

    def test_gather_validates_count(self, ordering):
        dec = decompose_domain(ordering, 3)
        with pytest.raises(ValueError):
            dec.gather([np.zeros(2)])

    def test_more_ranks_than_tiles_falls_back_to_even_split(self):
        o = make_ordering("pseudo-hilbert", 8, 8, tile_size=4)  # 4 tiles
        dec = decompose_domain(o, 16)
        assert dec.bounds[-1] == 64
        assert dec.load_imbalance() == 1.0

    def test_row_major_fallback(self):
        o = make_ordering("row-major", 10, 10)
        dec = decompose_domain(o, 4)
        np.testing.assert_array_equal(dec.bounds, [0, 25, 50, 75, 100])

    def test_invalid_rank_count(self):
        o = make_ordering("row-major", 4, 4)
        with pytest.raises(ValueError):
            decompose_domain(o, 0)


class TestDecomposeBoth:
    def test_both_domains(self):
        tomo = make_ordering("pseudo-hilbert", 16, 16, tile_size=4)
        sino = make_ordering("pseudo-hilbert", 24, 16, tile_size=4)
        td, sd = decompose_both(tomo, sino, 4)
        assert td.num_ranks == sd.num_ranks == 4
        assert td.bounds[-1] == 256
        assert sd.bounds[-1] == 384
