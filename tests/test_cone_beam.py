"""Tests for the 3D cone-beam geometry and its pipeline integration.

The central claim: cone-beam is *just another geometry* to the
memoized pipeline.  The 3D Siddon tracer emits the same COO→CSR
structures, the layout rectangles make the 2D orderings apply
unchanged, and the resulting operator satisfies the same contracts the
parallel-beam one does — exact adjointness in fp64, bit-identical
kernels where they share the reduction path, bit-identical serial vs
multi-worker tracing, and lossless save/load + plan-cache round trips.
"""

import numpy as np
import pytest

from repro.core import OperatorConfig, preprocess
from repro.geometry import ConeBeamGeometry, Grid3D
from repro.phantoms import ellipsoid_volume
from repro.solvers import cgls
from repro.trace import build_projection_matrix, trace_rays_3d


@pytest.fixture(scope="module")
def cone_geometry() -> ConeBeamGeometry:
    """12 views on a 6x8 detector over an 8x8x6 voxel grid."""
    return ConeBeamGeometry(
        num_angles=12, det_rows=6, det_cols=8, source_distance=24.0
    )


@pytest.fixture(scope="module")
def cone_operator(cone_geometry):
    op, _ = preprocess(
        cone_geometry,
        config=OperatorConfig(kernel="csr", dtype="float64"),
        cache="off",
    )
    return op


class TestGrid3D:
    def test_shape_and_counts(self):
        g = Grid3D(8, 6)
        assert g.shape == (6, 8, 8)
        assert g.num_voxels == 8 * 8 * 6
        assert g.num_pixels == g.num_voxels  # 2D duck-typing alias

    def test_voxel_index_matches_reshape(self):
        g = Grid3D(4, 3)
        vol = np.arange(g.num_voxels).reshape(g.shape)
        for iz in range(3):
            for iy in range(4):
                for ix in range(4):
                    assert vol[iz, iy, ix] == g.voxel_index(ix, iy, iz)

    def test_planes_cover_extent(self):
        g = Grid3D(8, 6, voxel_size=2.0)
        assert g.x_planes()[0] == -g.half_extent
        assert g.x_planes()[-1] == g.half_extent
        assert g.z_planes()[0] == -g.half_extent_z
        assert g.z_planes()[-1] == g.half_extent_z

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid3D(0, 4)
        with pytest.raises(ValueError):
            Grid3D(4, 4, voxel_size=0.0)


class TestConeBeamGeometry:
    def test_defaults(self, cone_geometry):
        g = cone_geometry
        assert g.grid.shape == (6, 8, 8)
        assert g.detector_distance == g.source_distance
        assert g.magnification == 2.0
        assert g.det_spacing == 2.0  # magnification * voxel_size
        assert g.sinogram_shape == (12, 6, 8)
        assert g.num_rays == 12 * 6 * 8

    def test_layout_rectangles(self, cone_geometry):
        g = cone_geometry
        rows, cols = g.tomo_layout_shape
        assert rows * cols == g.grid.num_voxels
        rows, cols = g.sino_layout_shape
        assert rows * cols == g.num_rays

    def test_source_too_close_rejected(self):
        # 8x8 grid has transaxial half-diagonal 4*sqrt(2) ≈ 5.66.
        with pytest.raises(ValueError, match="clear the grid"):
            ConeBeamGeometry(8, 4, 8, source_distance=5.0)

    def test_angle_validation(self):
        with pytest.raises(ValueError):
            ConeBeamGeometry(8, 4, 8, source_distance=24.0, angle_range=0.0)
        with pytest.raises(ValueError):
            ConeBeamGeometry(0, 4, 8, source_distance=24.0)

    def test_rays_point_at_detector(self, cone_geometry):
        origins, directions = cone_geometry.ray_bundle(3)
        assert origins.shape == directions.shape == (48, 3)
        np.testing.assert_allclose(
            np.linalg.norm(directions, axis=1), 1.0, atol=1e-12
        )
        # Marching from the source to the detector plane lands on the
        # stored pixel centres.
        pixels = cone_geometry.detector_pixels(3)
        t = np.linalg.norm(pixels - origins, axis=1)
        np.testing.assert_allclose(
            origins + t[:, None] * directions, pixels, atol=1e-10
        )

    def test_fingerprint_fields_stable(self, cone_geometry):
        fields = cone_geometry.fingerprint_fields()
        assert fields["kind"] == "cone"
        assert fields == cone_geometry.fingerprint_fields()


class TestSiddon3D:
    def test_chord_lengths_bounded(self, cone_geometry):
        g = cone_geometry
        diagonal = np.sqrt(
            2 * g.grid.extent**2 + g.grid.extent_z**2
        )
        for view in (0, 5):
            origins, directions = g.ray_bundle(view)
            segments = trace_rays_3d(g.grid, origins, directions, np.arange(48))
            per_ray = np.zeros(48)
            np.add.at(per_ray, segments.ray_index, segments.length)
            assert per_ray.max() <= diagonal + 1e-9

    def test_axial_ray_sums_column(self):
        # A ray through the volume centre along x crosses exactly n
        # voxels with unit chords.
        grid = Grid3D(8, 4)
        origins = np.array([[-100.0, 0.5, 0.5]])
        directions = np.array([[1.0, 0.0, 0.0]])
        segments = trace_rays_3d(grid, origins, directions, np.array([0]))
        assert segments.length.size == 8
        np.testing.assert_allclose(segments.length, 1.0, atol=1e-12)

    def test_miss_traces_nothing(self):
        grid = Grid3D(8, 4)
        origins = np.array([[-100.0, 0.0, 50.0]])  # far above the grid
        directions = np.array([[1.0, 0.0, 0.0]])
        segments = trace_rays_3d(grid, origins, directions, np.array([0]))
        assert segments.length.size == 0


class TestConeOperator:
    def test_adjointness_fp64(self, cone_operator, rng):
        """<A x, y> == <x, A^T y> to near machine precision in fp64."""
        op = cone_operator
        x = rng.standard_normal(op.num_pixels)
        y = rng.standard_normal(op.num_rays)
        lhs = float(op.forward(x) @ y)
        rhs = float(x @ op.adjoint(y))
        assert abs(lhs - rhs) / abs(lhs) < 1e-10

    def test_volume_roundtrip(self, cone_operator):
        vol = ellipsoid_volume(8, 6)
        ordered = cone_operator.volume_to_ordered(vol)
        assert np.array_equal(cone_operator.ordered_to_volume(ordered), vol)

    def test_projection_roundtrip(self, cone_operator, rng):
        stack = rng.standard_normal(cone_operator.geometry.sinogram_shape)
        ordered = cone_operator.projections_to_ordered(stack)
        assert np.array_equal(
            cone_operator.ordered_to_projections(ordered), stack
        )

    def test_reconstruction_quality(self, cone_geometry):
        """CGLS on noiseless cone data recovers the phantom."""
        op, _ = preprocess(
            ConeBeamGeometry(
                num_angles=24, det_rows=6, det_cols=12, source_distance=36.0
            ),
            config=OperatorConfig(kernel="csr"),
            cache="off",
        )
        vol = ellipsoid_volume(12, 6)
        y = op.forward(op.volume_to_ordered(vol))
        result = cgls(op, y, num_iterations=40)
        recon = op.ordered_to_volume(result.x)
        err = np.linalg.norm(recon - vol) / np.linalg.norm(vol)
        assert err < 0.25


class TestKernelConsistency:
    """Cross-layout agreement of the cone operator.

    csr and buffered share the row-segment reduction
    (``np.add.reduceat``), so they agree **bitwise**.  ELL accumulates
    per column slot (a different, equally valid summation order), so it
    matches to fp64 rounding but not bitwise — same as the 2D suite's
    cross-kernel contract.
    """

    @pytest.fixture(scope="class")
    def kernel_ops(self, cone_geometry):
        ops = {}
        for kernel in ("csr", "buffered", "ell"):
            ops[kernel], _ = preprocess(
                cone_geometry,
                config=OperatorConfig(
                    kernel=kernel,
                    partition_size=16,
                    buffer_bytes=128 * 1024,
                    dtype="float64",
                ),
                cache="off",
            )
        return ops

    def test_buffered_bitwise_equals_csr(self, kernel_ops, rng):
        x = rng.standard_normal(kernel_ops["csr"].num_pixels)
        y = rng.standard_normal(kernel_ops["csr"].num_rays)
        assert np.array_equal(
            kernel_ops["csr"].forward(x), kernel_ops["buffered"].forward(x)
        )
        assert np.array_equal(
            kernel_ops["csr"].adjoint(y), kernel_ops["buffered"].adjoint(y)
        )

    def test_ell_matches_csr_to_rounding(self, kernel_ops, rng):
        x = rng.standard_normal(kernel_ops["csr"].num_pixels)
        y = rng.standard_normal(kernel_ops["csr"].num_rays)
        np.testing.assert_allclose(
            kernel_ops["csr"].forward(x),
            kernel_ops["ell"].forward(x),
            rtol=1e-12,
            atol=1e-12,
        )
        np.testing.assert_allclose(
            kernel_ops["csr"].adjoint(y),
            kernel_ops["ell"].adjoint(y),
            rtol=1e-12,
            atol=1e-12,
        )

    @pytest.mark.parametrize("kernel", ["csr", "buffered", "ell"])
    def test_batch_bitwise_equals_single(self, kernel_ops, rng, kernel):
        op = kernel_ops[kernel]
        X = rng.standard_normal((op.num_pixels, 3))
        Y = op.forward_batch(X)
        for j in range(3):
            assert np.array_equal(Y[:, j], op.forward(X[:, j]))


class TestParallelTracing:
    def test_two_workers_bit_identical(self, cone_geometry, monkeypatch):
        """Fan-out tracing reassembles to the exact serial matrix."""
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        serial = build_projection_matrix(cone_geometry)
        from repro.parallel.backend import make_backend

        backend = make_backend(2, "thread")
        try:
            fanned = build_projection_matrix(cone_geometry, backend=backend)
        finally:
            backend.close()
        assert serial.shape == fanned.shape
        assert np.array_equal(serial.indptr, fanned.indptr)
        assert np.array_equal(serial.indices, fanned.indices)
        assert np.array_equal(serial.data, fanned.data)


class TestPersistence:
    def test_save_load_roundtrip(self, cone_operator, tmp_path, rng):
        from repro.io import load_operator, save_operator

        path = tmp_path / "cone.npz"
        save_operator(path, cone_operator)
        loaded = load_operator(path)
        assert loaded.geometry == cone_operator.geometry
        x = rng.standard_normal(cone_operator.num_pixels)
        assert np.array_equal(loaded.forward(x), cone_operator.forward(x))

    def test_plan_cache_roundtrip(self, cone_geometry, tmp_path, rng):
        config = OperatorConfig(kernel="csr", dtype="float64")
        cold, r1 = preprocess(cone_geometry, config=config, cache=tmp_path)
        warm, r2 = preprocess(cone_geometry, config=config, cache=tmp_path)
        assert not r1.cache_hit and r2.cache_hit
        assert r1.cache_key == r2.cache_key
        x = rng.standard_normal(cold.num_pixels)
        assert np.array_equal(cold.forward(x), warm.forward(x))

    def test_fingerprint_distinguishes_cone_params(self, cone_geometry):
        from repro.cache import plan_fingerprint

        base = plan_fingerprint(cone_geometry)
        moved = ConeBeamGeometry(
            num_angles=12, det_rows=6, det_cols=8, source_distance=25.0
        )
        assert plan_fingerprint(moved) != base
