"""Distributed solver equivalence + the comm-volume claim (paper Table 1).

Running CG through the memory-centric partitioned operator
(``A = R C A_p``), the compute-centric duplicated baseline, and the
single-process operator must produce the same reconstruction for
P ∈ {1, 2, 4}.  On top of numerical equivalence, the obs counters must
show the paper's headline communication claim on real traffic:
partitioned (sparse Alltoallv of touched rows) moves fewer bytes than
duplicated (full-tomogram Allreduce per backprojection).
"""

import numpy as np
import pytest

from repro import obs
from repro.core import OperatorConfig, preprocess
from repro.dist import DistributedOperator, DuplicatedOperator, decompose_both
from repro.geometry import ParallelBeamGeometry
from repro.solvers import cgls

# Compare at (near-)convergence: mid-convergence CG iterates are
# hypersensitive to float32 rounding differences between operator
# implementations and can transiently disagree by percents before
# re-converging; at 12 iterations all three operators agree to ~1e-6.
ITERATIONS = 12


@pytest.fixture(scope="module")
def system():
    """Serial operator + measurement on a tomogram-heavy geometry."""
    geometry = ParallelBeamGeometry(24, 32)
    operator, _ = preprocess(geometry, config=OperatorConfig(kernel="csr"))
    truth = np.random.default_rng(0).random(operator.num_pixels).astype(np.float32)
    y = operator.forward(truth)
    reference = cgls(operator, y, num_iterations=ITERATIONS)
    return operator, y, reference


def _partitioned(operator, num_ranks):
    tomo_dec, sino_dec = decompose_both(
        operator.tomo_ordering, operator.sino_ordering, num_ranks
    )
    return DistributedOperator(operator.matrix, tomo_dec, sino_dec)


@pytest.mark.parametrize("num_ranks", [1, 2, 4])
class TestSolverEquivalence:
    def test_partitioned_matches_serial(self, system, num_ranks):
        operator, y, reference = system
        result = cgls(_partitioned(operator, num_ranks), y, num_iterations=ITERATIONS)
        scale = float(np.max(np.abs(reference.x)))
        np.testing.assert_allclose(result.x, reference.x, rtol=1e-3, atol=1e-3 * scale)

    def test_duplicated_matches_serial(self, system, num_ranks):
        operator, y, reference = system
        result = cgls(
            DuplicatedOperator(operator.matrix, num_ranks), y, num_iterations=ITERATIONS
        )
        scale = float(np.max(np.abs(reference.x)))
        np.testing.assert_allclose(result.x, reference.x, rtol=1e-3, atol=1e-3 * scale)

    def test_partitioned_matches_duplicated(self, system, num_ranks):
        operator, y, _ = system
        part = cgls(_partitioned(operator, num_ranks), y, num_iterations=ITERATIONS)
        dup = cgls(
            DuplicatedOperator(operator.matrix, num_ranks), y, num_iterations=ITERATIONS
        )
        scale = float(np.max(np.abs(dup.x)))
        np.testing.assert_allclose(part.x, dup.x, rtol=1e-3, atol=1e-3 * scale)


@pytest.mark.parametrize("num_ranks", [2, 4])
class TestCommVolumeClaim:
    def _comm_bytes(self, op, y):
        with obs.capture() as cap:
            cgls(op, y, num_iterations=ITERATIONS)
        return cap.total(obs.COMM_BYTES), cap

    def test_partitioned_moves_fewer_bytes_than_duplicated(self, system, num_ranks):
        operator, y, _ = system
        part_bytes, part_cap = self._comm_bytes(_partitioned(operator, num_ranks), y)
        dup_bytes, dup_cap = self._comm_bytes(
            DuplicatedOperator(operator.matrix, num_ranks), y
        )
        assert part_bytes > 0 and dup_bytes > 0
        assert part_bytes < dup_bytes
        # Counter totals agree with the communicators' own byte logs.
        assert part_cap.total(obs.COMM_MESSAGES) > 0
        assert dup_cap.span_names().count("comm.allreduce") > 0
        assert part_cap.span_names().count("comm.alltoallv") > 0

    def test_counters_match_comm_log(self, system, num_ranks):
        operator, y, _ = system
        op = _partitioned(operator, num_ranks)
        with obs.capture() as cap:
            cgls(op, y, num_iterations=ITERATIONS)
        assert cap.total(obs.COMM_BYTES) == op.comm.log.off_diagonal_volume()
