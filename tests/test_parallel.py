"""Tests for the shared-memory parallel execution backend.

The backend's one promise is that parallelism is an execution knob,
never a numerics knob: every worker owns a contiguous partition range
and reductions concatenate in fixed partition-major order, so serial
and parallel results must be **bit-identical** on all three layouts,
for thread and process modes, for single-vector and batched kernels,
through every public entry point (operator, reconstruct, preprocess,
pipeline).  These tests enforce exactly that, plus the satellite
fixes: worker-spec parsing, shared-memory lifecycle, the buffered
vector-plan persistence exclusion, buffer-capacity validation, and
``permute`` input validation.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro import obs
from repro.cache import PlanCache
from repro.core import MemXCTOperator, OperatorConfig, preprocess, reconstruct
from repro.geometry import ParallelBeamGeometry
from repro.io import load_operator, save_operator
from repro.parallel import (
    ParallelSpmvEngine,
    SerialBackend,
    ThreadBackend,
    make_backend,
    parse_workers,
    partition_ranges,
)
from repro.parallel import shm as shm_mod
from repro.pipeline import reconstruct_stack
from repro.resilience import FaultConfig
from repro.sparse import CSRMatrix, build_buffered, build_ell, validate_buffer_bytes
from repro.trace import build_projection_matrix

KERNELS = ("csr", "buffered", "ell")
WORKER_SPECS = (2, 4, "process:2")


@pytest.fixture(scope="module")
def geometry() -> ParallelBeamGeometry:
    return ParallelBeamGeometry(40, 32)


@pytest.fixture(scope="module")
def operators(geometry) -> dict[str, MemXCTOperator]:
    """One serial operator per kernel, partition size small enough to
    give every worker several partitions."""
    return {
        kernel: preprocess(
            geometry,
            config=OperatorConfig(
                kernel=kernel, partition_size=16, buffer_bytes=2048
            ),
        )[0]
        for kernel in KERNELS
    }


@pytest.fixture(scope="module")
def sinogram(geometry) -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.random(geometry.sinogram_shape).astype(np.float32)


class TestParseWorkers:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            (1, (1, "serial")),
            (4, (4, "thread")),
            ("serial", (1, "serial")),
            ("3", (3, "thread")),
            ("thread:2", (2, "thread")),
            ("process:2", (2, "process")),
            ("process:1", (1, "process")),
            ("", (1, "serial")),
        ],
    )
    def test_specs(self, spec, expected):
        assert parse_workers(spec) == expected

    def test_none_defers_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert parse_workers(None) == (1, "serial")
        monkeypatch.setenv("REPRO_WORKERS", "thread:3")
        assert parse_workers(None) == (3, "thread")

    def test_auto_uses_cpu_count(self):
        workers, mode = parse_workers("auto")
        assert workers == max(os.cpu_count() or 1, 1)
        assert mode in ("serial", "thread")

    @pytest.mark.parametrize("bad", [0, -1, "0", "frob", "thread:x", "frob:2", 1.5])
    def test_bad_specs_raise(self, bad):
        with pytest.raises((ValueError, TypeError)):
            parse_workers(bad)

    def test_config_validates_spec(self):
        with pytest.raises(ValueError):
            OperatorConfig(workers="frob")
        assert OperatorConfig(workers=4).workers == 4


class TestPartitionRanges:
    def test_balanced_contiguous(self):
        assert partition_ranges(7, 3) == [(0, 3), (3, 5), (5, 7)]
        assert partition_ranges(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_more_workers_than_partitions(self):
        assert partition_ranges(2, 8) == [(0, 1), (1, 2)]

    def test_empty(self):
        assert partition_ranges(0, 4) == []

    def test_cover_without_overlap(self):
        for n, w in [(13, 4), (128, 7), (5, 5)]:
            ranges = partition_ranges(n, w)
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            assert all(a1 == b0 for (_, a1), (b0, _) in zip(ranges, ranges[1:]))


class TestBackends:
    def test_make_backend_modes(self):
        assert isinstance(make_backend(1, "serial"), SerialBackend)
        assert isinstance(make_backend(4, "thread"), ThreadBackend)

    def test_thread_pool_is_shared(self):
        a, b = ThreadBackend(3), ThreadBackend(3)
        assert a._pool() is b._pool()

    def test_map_preserves_order(self):
        backend = make_backend(3, "thread")
        assert backend.map(lambda v: v * v, list(range(20))) == [
            v * v for v in range(20)
        ]


class TestSharedMemory:
    def test_roundtrip_and_dispose(self):
        arrays = {
            "a": np.arange(17, dtype=np.int64),
            "b": np.random.default_rng(0).random((3, 5)).astype(np.float32),
            "c": np.empty(0, dtype=np.uint16),
        }
        shared = shm_mod.SharedArrays(arrays)
        try:
            out = shm_mod.read_copy(shared.name, shared.manifest)
            for key, array in arrays.items():
                assert out[key].dtype == array.dtype
                assert out[key].shape == array.shape
                assert (out[key] == array).all()
        finally:
            shared.dispose()
        # Double-dispose is safe; the segment is gone afterwards.
        shared.dispose()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shared.name)

    def test_attach_views_share_storage(self):
        shared = shm_mod.SharedArrays({"x": np.arange(8, dtype=np.float32)})
        try:
            views = shm_mod.attach_arrays(shared.name, shared.manifest)
            assert (views["x"] == np.arange(8)).all()
        finally:
            shm_mod.detach_all()
            shared.dispose()


class TestEngineBitIdentity:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("spec", WORKER_SPECS)
    def test_forward_adjoint_batch(self, operators, kernel, spec):
        serial = operators[kernel]
        rng = np.random.default_rng(7)
        x = rng.random(serial.num_pixels).astype(np.float32)
        y = rng.random(serial.num_rays).astype(np.float32)
        X = rng.random((serial.num_pixels, 3)).astype(np.float32)
        Y = rng.random((serial.num_rays, 3)).astype(np.float32)
        ref = (
            serial.forward(x),
            serial.adjoint(y),
            serial.forward_batch(X),
            serial.adjoint_batch(Y),
        )
        serial.set_workers(spec)
        try:
            assert (serial.forward(x) == ref[0]).all()
            assert (serial.adjoint(y) == ref[1]).all()
            assert (serial.forward_batch(X) == ref[2]).all()
            assert (serial.adjoint_batch(Y) == ref[3]).all()
        finally:
            serial.set_workers(None)

    def test_engine_close_is_idempotent(self, operators):
        fwd, adj = operators["csr"].matrix, operators["csr"].transpose
        engine = ParallelSpmvEngine(
            workers=2,
            mode="process",
            partition_size=16,
            forward_layout=fwd,
            adjoint_layout=adj,
        )
        x = np.ones(fwd.num_cols, dtype=np.float32)
        assert (engine.apply("forward", x) == fwd.spmv(x)).all()
        engine.close()
        engine.close()
        with pytest.raises(RuntimeError):
            engine.apply("forward", x)

    def test_serial_scope_pins_serial(self, operators):
        op = operators["buffered"]
        op.set_workers(2)
        try:
            assert op._active_engine() is not None
            with op.serial_scope():
                assert op._active_engine() is None
                with op.serial_scope():
                    assert op._active_engine() is None
                assert op._active_engine() is None
            assert op._active_engine() is not None
        finally:
            op.set_workers(None)


class TestObservability:
    def test_parallel_counters_and_spans(self, operators):
        op = operators["buffered"]
        op.set_workers(2)
        try:
            x = np.ones(op.num_pixels, dtype=np.float32)
            with obs.capture() as cap:
                op.forward(x)
            assert cap.total(obs.PARALLEL_DISPATCHES) == 1
            assert cap.total(obs.PARALLEL_TASKS) == 2
            spans = cap.find_spans("parallel.worker")
            assert len(spans) == 2
            assert {sp.attrs["worker"] for sp in spans} == {0, 1}
            for sp in spans:
                assert sp.attrs["mode"] == "thread"
                assert sp.duration >= 0.0
        finally:
            op.set_workers(None)

    def test_process_mode_counts_shm_bytes(self, operators):
        op = operators["csr"]
        op.set_workers("process:2")
        try:
            x = np.ones(op.num_pixels, dtype=np.float32)
            with obs.capture() as cap:
                op.forward(x)
            assert cap.total(obs.PARALLEL_SHM_BYTES) >= x.nbytes
        finally:
            op.set_workers(None)


class TestSolverEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_cgls_bit_identical(self, geometry, operators, sinogram, kernel):
        ref = reconstruct(
            sinogram, geometry, solver="cg", iterations=8, operator=operators[kernel]
        ).image
        for spec in WORKER_SPECS:
            image = reconstruct(
                sinogram,
                geometry,
                solver="cg",
                iterations=8,
                operator=operators[kernel],
                workers=spec,
            ).image
            assert (image == ref).all(), spec
        operators[kernel].set_workers(None)

    def test_fault_injected_run_with_workers(self, geometry, sinogram, operators):
        """Resilience machinery and the parallel backend compose."""
        op = operators["buffered"]
        kwargs = dict(
            solver="cg",
            iterations=6,
            num_ranks=2,
            faults=FaultConfig(drop=0.05, corrupt=0.02, seed=7),
            operator=op,
        )
        ref = reconstruct(sinogram, geometry, **kwargs)
        parallel = reconstruct(sinogram, geometry, workers=2, **kwargs)
        op.set_workers(None)
        assert (parallel.image == ref.image).all()
        assert parallel.extra["fault_stats"]["recoveries"] >= 1


class TestPreprocessFanOut:
    @pytest.mark.parametrize("spec", [2, "process:2"])
    def test_traced_matrix_identical(self, geometry, spec):
        serial = build_projection_matrix(geometry)
        workers, mode = parse_workers(spec)
        backend = make_backend(workers, mode)
        try:
            fanned = build_projection_matrix(geometry, backend=backend)
        finally:
            backend.close()
        assert (fanned.indptr == serial.indptr).all()
        assert (fanned.indices == serial.indices).all()
        assert (fanned.data == serial.data).all()

    def test_preprocess_with_workers_matches(self, geometry):
        ref, _ = preprocess(geometry, config=OperatorConfig(partition_size=16, buffer_bytes=2048))
        par, _ = preprocess(
            geometry,
            config=OperatorConfig(partition_size=16, buffer_bytes=2048, workers=2),
        )
        try:
            assert (par.matrix.displ == ref.matrix.displ).all()
            assert (par.matrix.ind == ref.matrix.ind).all()
            assert (par.matrix.val == ref.matrix.val).all()
        finally:
            par.close()

    def test_cache_hit_applies_requested_workers(self, geometry, tmp_path):
        cache = PlanCache(tmp_path / "plans")
        cold, report = preprocess(geometry, cache=cache)
        assert not report.cache_hit
        warm, report = preprocess(
            geometry, config=OperatorConfig(workers=2), cache=cache
        )
        try:
            assert report.cache_hit
            assert warm.config.workers == 2
            x = np.ones(warm.num_pixels, dtype=np.float32)
            assert (warm.forward(x) == cold.forward(x)).all()
        finally:
            warm.close()


class TestPipelineWorkers:
    @pytest.fixture(scope="class")
    def stack(self):
        rng = np.random.default_rng(13)
        return rng.random((4, 32, 32)).astype(np.float32)

    @pytest.fixture(scope="class")
    def stack_geometry(self):
        return ParallelBeamGeometry(32, 32)

    def test_batched_volume_bit_identical(self, stack, stack_geometry):
        ref = reconstruct_stack(stack, stack_geometry, iterations=6).volume
        for spec in (2, "process:2"):
            vol = reconstruct_stack(
                stack, stack_geometry, iterations=6, workers=spec
            ).volume
            assert (vol == ref).all(), spec

    def test_looped_slice_fanout_bit_identical(self, stack, stack_geometry):
        ref = reconstruct_stack(
            stack, stack_geometry, iterations=6, batch=False
        ).volume
        vol = reconstruct_stack(
            stack, stack_geometry, iterations=6, batch=False, workers=2
        ).volume
        assert (vol == ref).all()

    def test_env_var_workers(self, stack, stack_geometry, monkeypatch):
        ref = reconstruct_stack(stack, stack_geometry, iterations=4).volume
        monkeypatch.setenv("REPRO_WORKERS", "2")
        vol = reconstruct_stack(stack, stack_geometry, iterations=4).volume
        assert (vol == ref).all()


class TestBufferedPlanPersistence:
    """The `_plan` cache must never ride along with a pickled layout."""

    @pytest.fixture()
    def layout(self, small_matrix):
        return build_buffered(small_matrix.sort_rows_by_index(), 16, 1024)

    def test_pickle_excludes_plan(self, layout):
        x = np.ones(layout.num_cols, dtype=np.float32)
        warm = layout.spmv_vectorized(x)
        assert hasattr(layout, "_plan")
        clone = pickle.loads(pickle.dumps(layout))
        assert not hasattr(clone, "_plan")
        # Lazy rebuild produces the same plan and the same result.
        assert (clone.spmv_vectorized(x) == warm).all()
        assert hasattr(clone, "_plan")

    def test_setstate_drops_stale_plan(self, layout):
        state = dict(layout.__dict__)
        state["_plan"] = ("stale", "stale", "stale")
        clone = object.__new__(type(layout))
        clone.__setstate__(state)
        assert not hasattr(clone, "_plan")

    def test_warm_operator_cache_roundtrip(self, tmp_path):
        """Regression: a warmed operator persists and reloads cleanly,
        and the loaded copy rebuilds its plan lazily."""
        geometry = ParallelBeamGeometry(24, 24)
        cache = PlanCache(tmp_path / "plans")
        op, _ = preprocess(
            geometry,
            config=OperatorConfig(partition_size=16, buffer_bytes=1024),
            cache=cache,
        )
        x = np.ones(op.num_pixels, dtype=np.float32)
        warm_result = op.forward(x)  # warms the vector plan
        assert hasattr(op.buffered_forward, "_plan")
        path = tmp_path / "op.npz"
        save_operator(path, op)
        loaded = load_operator(path)
        assert not hasattr(loaded.buffered_forward, "_plan")
        assert (loaded.forward(x) == warm_result).all()


class TestValidationFixes:
    @pytest.mark.parametrize("bad", [3, 30, 4097, 1023])
    def test_buffer_bytes_must_be_element_multiple(self, bad):
        with pytest.raises(ValueError, match="multiple"):
            validate_buffer_bytes(bad)
        with pytest.raises(ValueError, match="multiple"):
            OperatorConfig(kernel="buffered", buffer_bytes=bad)

    @pytest.mark.parametrize("good", [4, 1024, 2048, 256 * 1024])
    def test_buffer_bytes_multiples_accepted(self, good):
        assert validate_buffer_bytes(good) == good // 4
        OperatorConfig(kernel="buffered", buffer_bytes=good)

    def test_permute_rejects_bad_row_perm(self, small_matrix):
        with pytest.raises(ValueError, match="row_perm"):
            small_matrix.permute(np.array([0, small_matrix.num_rows]), None)
        with pytest.raises(ValueError, match="row_perm"):
            small_matrix.permute(np.array([[0, 1]]), None)

    def test_permute_rejects_bad_col_rank(self, small_matrix):
        ncols = small_matrix.num_cols
        with pytest.raises(ValueError, match="shape"):
            small_matrix.permute(None, np.arange(ncols - 1))
        with pytest.raises(ValueError, match="outside"):
            rank = np.arange(ncols)
            rank[0] = ncols
            small_matrix.permute(None, rank)
        with pytest.raises(ValueError, match="injective"):
            rank = np.arange(ncols)
            rank[1] = rank[0]
            small_matrix.permute(None, rank)

    def test_permute_still_allows_row_subsets(self, small_matrix):
        sub = small_matrix.permute(np.array([3, 1, 3]), None)
        assert sub.num_rows == 3


class TestPartitionSlices:
    """Layout slices are the unit the engine is built on — cover the
    slicing math directly, including ragged final partitions."""

    def test_csr_row_block(self, small_matrix):
        x = np.random.default_rng(0).random(small_matrix.num_cols).astype(np.float32)
        ref = small_matrix.spmv(x)
        mid = small_matrix.num_rows // 3
        parts = [
            small_matrix.row_block(0, mid).spmv(x),
            small_matrix.row_block(mid, small_matrix.num_rows).spmv(x),
        ]
        assert (np.concatenate(parts) == ref).all()
        with pytest.raises(ValueError):
            small_matrix.row_block(5, small_matrix.num_rows + 1)

    @pytest.mark.parametrize("builder", ["buffered", "ell"])
    def test_partition_slice_concat(self, small_matrix, builder):
        ordered = small_matrix.sort_rows_by_index()
        layout = (
            build_buffered(ordered, 16, 1024)
            if builder == "buffered"
            else build_ell(ordered, 16)
        )
        x = np.random.default_rng(1).random(layout.num_cols).astype(np.float32)
        ref = layout.spmv(x)
        n = layout.partitions.num_partitions
        for split in range(1, n):
            parts = [
                layout.partition_slice(0, split).spmv(x),
                layout.partition_slice(split, n).spmv(x),
            ]
            assert (np.concatenate(parts) == ref).all(), split
        with pytest.raises(ValueError):
            layout.partition_slice(0, n + 1)
